"""Hypothesis generators for *well-typed-by-construction* programs.

``typed_term(depth)`` draws a (type, term) pair such that the term has that
type.  The soundness property (Proposition 1) is then checked by inferring
the term's type (it must match the intended type structurally) and
evaluating it (the value must conform to the type).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core import terms as T
from repro.core.types import (BOOL, FieldType, INT, STRING, TObj, TRecord,
                              TSet, Type, resolve)
from repro.eval.store import Location
from repro.eval.values import (VBool, VInt, VObject, VRecord, VSet, VString,
                               VUnit, Value)

_LABELS = ["a", "b", "c", "d"]

# -- type generation ---------------------------------------------------------


def gen_type(max_depth: int = 2) -> st.SearchStrategy[Type]:
    base = st.sampled_from([INT, BOOL, STRING])
    if max_depth <= 0:
        return base
    sub = gen_type(max_depth - 1)
    from repro.core.types import TFun
    return st.one_of(
        base,
        st.builds(TSet, base),
        _record_type(sub),
        st.builds(TObj, _record_type(base)),
        st.builds(TFun, base, sub),
    )


def _record_type(field_strategy) -> st.SearchStrategy[TRecord]:
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=3))
        fields = {}
        for label in _LABELS[:n]:
            t = draw(field_strategy)
            mutable = draw(st.booleans()) and not isinstance(
                resolve(t), TObj)
            fields[label] = FieldType(t, mutable)
        return TRecord(fields)
    return build()


# -- term generation (typed) ---------------------------------------------------


@st.composite
def term_of(draw, t: Type, depth: int) -> T.Term:
    from repro.core.types import TFun
    t = resolve(t)
    # Generic type-preserving wrappers exercising let and beta-redexes.
    if depth > 0 and draw(st.integers(0, 9)) == 0:
        inner = draw(term_of(t, depth - 1))
        if draw(st.booleans()):
            return T.Let("w", draw(term_of(INT, depth - 1)), inner)
        return T.App(T.Lam("w", inner), draw(term_of(BOOL, depth - 1)))
    if isinstance(t, TFun):
        # a lambda ignoring its parameter (the body decides the codomain);
        # occasionally an immediately-applied curried constant instead
        body = draw(term_of(t.cod, depth - 1))
        return T.Lam("arg", body)
    if isinstance(t, TRecord):
        return T.RecordExpr([
            T.RecordField(label, draw(term_of(f.type, depth - 1)),
                          f.mutable)
            for label, f in t.fields.items()])
    if isinstance(t, TSet):
        n = draw(st.integers(min_value=0, max_value=3))
        elems = [draw(term_of(t.elem, depth - 1)) for _ in range(n)]
        base = T.SetExpr(elems)
        if depth > 0 and draw(st.booleans()):
            other = T.SetExpr([draw(term_of(t.elem, depth - 1))])
            from repro.objects.algebra import mk_union
            return mk_union(base, other)
        return base
    if isinstance(t, TObj):
        inner = resolve(t.elem)
        assert isinstance(inner, TRecord)
        raw = draw(term_of(inner, depth - 1))
        obj = T.IDView(raw)
        if depth > 0 and draw(st.booleans()):
            # compose a view that rebuilds the same record shape
            x = "v"
            view_body = T.RecordExpr([
                T.RecordField(label, T.Dot(T.Var(x), label), f.mutable)
                if not f.mutable else
                T.RecordField(label, T.Extract(T.Var(x), label), f.mutable)
                for label, f in inner.fields.items()])
            return T.AsView(obj, T.Lam(x, view_body))
        return obj
    if t is INT or (hasattr(t, "name") and getattr(t, "name", "") == "int"):
        if depth > 0 and draw(st.booleans()):
            op = draw(st.sampled_from(["+", "-", "*"]))
            lhs = draw(term_of(INT, depth - 1))
            rhs = draw(term_of(INT, depth - 1))
            from repro.objects.algebra import mk_app
            return mk_app(T.Var(op), lhs, rhs)
        if depth > 0 and draw(st.booleans()):
            cond = draw(term_of(BOOL, depth - 1))
            return T.If(cond, draw(term_of(INT, depth - 1)),
                        draw(term_of(INT, depth - 1)))
        if depth > 0 and draw(st.booleans()):
            # read a field back out of a record
            rec = T.RecordExpr([T.RecordField(
                "a", draw(term_of(INT, depth - 1)), False)])
            return T.Dot(rec, "a")
        if depth > 0 and draw(st.integers(0, 4)) == 0:
            # query an object: materializes the view, projects the field
            raw = T.RecordExpr([T.RecordField(
                "q", draw(term_of(INT, depth - 1)), False)])
            return T.Query(T.Lam("v", T.Dot(T.Var("v"), "q")),
                           T.IDView(raw))
        return T.Const(draw(st.integers(-50, 50)), INT)
    if getattr(t, "name", "") == "bool":
        if depth > 0 and draw(st.booleans()):
            from repro.objects.algebra import mk_app
            lhs = draw(term_of(INT, depth - 1))
            rhs = draw(term_of(INT, depth - 1))
            return mk_app(T.Var(draw(st.sampled_from(["<", ">", "<=", ">="]))),
                          lhs, rhs)
        return T.Const(draw(st.booleans()), BOOL)
    if getattr(t, "name", "") == "string":
        s = draw(st.text(alphabet="abcxyz", max_size=4))
        if depth > 0 and draw(st.booleans()):
            from repro.objects.algebra import mk_app
            return mk_app(T.Var("^"), T.Const(s, STRING),
                          draw(term_of(STRING, depth - 1)))
        return T.Const(s, STRING)
    raise AssertionError(f"no generator for type {t!r}")


@st.composite
def typed_term(draw, max_depth: int = 2):
    """Draw (type, term) with term : type by construction."""
    t = draw(gen_type(max_depth))
    term = draw(term_of(t, max_depth))
    return t, term


# -- value conformance ---------------------------------------------------------


def value_conforms(value: Value, t: Type, machine) -> bool:
    """Does a runtime value inhabit a (ground) type? (Prop 1's conclusion)"""
    t = resolve(t)
    if isinstance(value, VInt):
        return getattr(t, "name", "") == "int"
    if isinstance(value, VBool):
        return getattr(t, "name", "") == "bool"
    if isinstance(value, VString):
        return getattr(t, "name", "") == "string"
    if isinstance(value, VUnit):
        return getattr(t, "name", "") == "unit"
    if isinstance(value, VRecord):
        if not isinstance(t, TRecord):
            return False
        if set(value.cells) != set(t.fields):
            return False
        for label, f in t.fields.items():
            cell = value.cells[label]
            inner = cell.value if isinstance(cell, Location) else cell
            if not value_conforms(inner, f.type, machine):
                return False
            if f.mutable and label not in value.mutable_labels:
                return False
        return True
    if isinstance(value, VSet):
        if not isinstance(t, TSet):
            return False
        return all(value_conforms(e, t.elem, machine) for e in value.elems)
    if isinstance(value, VObject):
        if not isinstance(t, TObj):
            return False
        materialized = machine.materialize(value)
        return value_conforms(materialized, t.elem, machine)
    from repro.core.types import TFun
    from repro.eval.values import VBuiltin, VClosure
    if isinstance(value, (VClosure, VBuiltin)):
        return isinstance(t, TFun)
    return False

"""Proposition 2 — principal types.

A principal type has every other valid typing as an instance.  We check the
instance property operationally: the inferred polymorphic type of a term
must successfully instantiate at every concrete usage that is typable, and
reject the ones that are not.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Session
from repro.core.env import initial_type_env
from repro.core.infer import infer, infer_scheme
from repro.core.types import types_structurally_equal
from repro.core.unify import unify
from repro.syntax.parser import parse_expression

from .genprog import typed_term


def test_field_access_applies_to_any_record_with_the_field():
    s = Session()
    s.exec("fun get x = x.F")
    assert s.eval_py("get [F = 1]") == 1
    assert s.eval_py('get [F = "s", Other = true]') == "s"
    assert s.eval_py("get [Extra = 0, F = {1}]") == [1]


def test_field_access_rejects_records_without_the_field():
    s = Session()
    s.exec("fun get x = x.F")
    with pytest.raises(Exception):
        s.eval("get [G = 1]")


def test_update_function_requires_mutability_at_every_instance():
    s = Session()
    s.exec("fun bump x = update(x, N, 1)")
    s.eval("bump [N := 0]")
    with pytest.raises(Exception):
        s.eval("bump [N = 0]")


def test_kinded_instantiations_are_independent():
    # each use of a polymorphic function re-instantiates its kinds
    s = Session()
    s.exec("fun get x = x.F")
    out = s.eval_py("(get [F = 1], get [F = true])")
    assert out == {"1": 1, "2": True}


def test_annual_income_instances():
    s = Session()
    s.exec("fun ai p = (p.Income) * 12 + p.Bonus")
    assert s.eval_py("ai [Income = 1, Bonus = 2]") == 14
    assert s.eval_py("ai [Income = 1, Bonus = 2, Extra = \"x\"]") == 14
    with pytest.raises(Exception):
        s.eval("ai [Income = 1]")


def test_inference_is_stable_under_reinference():
    """Inferring twice yields alpha-equivalent schemes (determinism)."""
    from repro.syntax.pretty import pretty_scheme
    for src in ("fn x => x.A", "fn s => select as fn x => [N = x.N] from s "
                "where fn o => true",
                "fn o => query(fn x => (x.A) + 1, o)"):
        env1, env2 = initial_type_env(), initial_type_env()
        s1 = pretty_scheme(infer_scheme(parse_expression(src), env1))
        s2 = pretty_scheme(infer_scheme(parse_expression(src), env2))
        assert s1 == s2


@given(typed_term(max_depth=2))
@settings(max_examples=80, deadline=None)
def test_principal_type_unifies_with_intended(pair):
    """For generator programs the intended type is always an instance of
    the inferred principal type."""
    t, term = pair
    inferred = infer(term, initial_type_env(), level=1)
    unify(inferred, t)  # must not raise
    assert types_structurally_equal(inferred, t)


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_record_width_does_not_change_principality(n):
    """x.l1 + ... + x.ln infers exactly the kind listing l1..ln at int."""
    body = " + ".join([f"(x.f{i})" for i in range(n)] + ["0"])
    src = f"fn x => {body}"
    from repro.syntax.pretty import pretty_scheme
    scheme = infer_scheme(parse_expression(src), initial_type_env())
    text = pretty_scheme(scheme)
    for i in range(n):
        assert f"f{i} = int" in text


def test_let_polymorphism_generalizes_only_free_vars():
    # a classic: the lambda-bound variable must stay monomorphic
    with pytest.raises(Exception):
        infer(parse_expression("fn f => (f 1, f true)"),
              initial_type_env(), level=1)


def test_nested_let_generalization_levels():
    src = ("let f = fn x => let g = fn y => (x, y) in g end in "
           "((f 1) true, (f \"s\") 2) end")
    out = Session().eval_py(src)
    assert out == {"1": {"1": 1, "2": True}, "2": {"1": "s", "2": 2}}

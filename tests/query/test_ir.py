"""Recognition tests: surface queries to the set-algebra IR."""

from __future__ import annotations

import pytest

from repro import Session
from repro.query.ir import (STRUCTURAL_NAMES, ExtentSource, FilterStage,
                            FuseStage, MapStage, Pipeline, ProductSource,
                            RelationStage, SelectStage, equality_key,
                            recognize)

from .helpers import SETUP


@pytest.fixture(scope="module")
def session():
    s = Session()
    s.exec(SETUP)
    return s


def _recognized(session, src: str) -> Pipeline:
    pipe = recognize(session.parse(src))
    assert pipe is not None, f"expected {src!r} to be recognized"
    return pipe


def test_filter_map_chain_recognized(session):
    pipe = _recognized(
        session,
        'c-query(fn S => map(fn o => query(fn v => v.Name, o), '
        'filter(fn o => query(fn v => v.Dept = "eng", o), S)), A)')
    assert isinstance(pipe.source, ExtentSource)
    assert [type(st) for st in pipe.stages] == [FilterStage, MapStage]
    assert pipe.finish is None
    assert pipe.needs and pipe.needs <= STRUCTURAL_NAMES


def test_select_sugar_recognized(session):
    pipe = _recognized(
        session,
        'c-query(fn S => select as v2 from S '
        'where fn o => query(fn v => v.Dept = "eng", o), A)')
    assert [type(st) for st in pipe.stages] == [SelectStage]


def test_finish_wrapper_recognized(session):
    pipe = _recognized(
        session,
        'c-query(fn S => size(filter('
        'fn o => query(fn v => v.Dept = "eng", o), S)), A)')
    assert [type(st) for st in pipe.stages] == [FilterStage]
    assert pipe.finish is not None


def test_nested_cquery_intersect_recognized(session):
    pipe = _recognized(
        session, 'c-query(fn S => c-query(fn Tt => intersect(S, Tt), B), A)')
    assert isinstance(pipe.source, ProductSource)
    assert len(pipe.source.parts) == 2
    assert all(isinstance(p.source, ExtentSource) for p in pipe.source.parts)
    assert [type(st) for st in pipe.stages] == [FuseStage]


def test_relation_recognized(session):
    pipe = _recognized(
        session,
        'c-query(fn S => c-query(fn D => '
        'relation [l = x, r = d] from x in S, d in D '
        'where query(fn v => v.Dept = "eng", x), B), A)')
    assert isinstance(pipe.source, ProductSource)
    stage = pipe.stages[0]
    assert isinstance(stage, RelationStage)
    assert stage.binders == ["x", "d"]
    assert [lbl for lbl, _ in stage.fields] == ["l", "r"]


def test_non_query_has_no_extent_sources(session):
    # Arbitrary expressions degenerate to an opaque TermSource pipeline
    # (or fail recognition outright); either way there is no class extent
    # for the planner to work with.
    for src in ("1", "{1, 2}"):
        pipe = recognize(session.parse(src))
        assert pipe is None or not pipe.extent_sources()


def test_stage_referencing_fold_var_refused(session):
    # A stage body that captures the fold variable itself is not a
    # per-element computation; recognition must refuse it.
    assert recognize(session.parse(
        "c-query(fn S => map(fn o => S, S), A)")) is None


def test_class_term_referencing_fold_var_refused(session):
    # The inner class position mentions the outer fold variable; that is
    # not a class extent the planner can resolve up front.
    assert recognize(session.parse(
        "c-query(fn S => c-query(fn Tt => Tt, S), A)")) is None


def test_equality_key_exact(session):
    pipe = _recognized(
        session,
        'c-query(fn S => filter('
        'fn o => query(fn v => v.Dept = "eng", o), S), A)')
    key = equality_key(pipe.stages[0].pred)
    assert key is not None
    label, _const, exact = key
    assert label == "Dept"
    assert exact is True


def test_equality_key_conjunction_is_residual(session):
    pipe = _recognized(
        session,
        'c-query(fn S => filter(fn o => query(fn v => '
        '(v.Dept = "eng") andalso (v.Name = "Ada"), o), S), A)')
    key = equality_key(pipe.stages[0].pred)
    assert key is not None
    _label, _const, exact = key
    assert exact is False


def test_equality_key_none_for_non_equality(session):
    pipe = _recognized(
        session,
        'c-query(fn S => filter('
        'fn o => query(fn v => true, o), S), A)')
    assert equality_key(pipe.stages[0].pred) is None

"""Planner gates, fallback reasons, stats, and OCC read registration."""

from __future__ import annotations

from repro import Session
from repro.query.tracking import DepTracker

from .helpers import SETUP, make_sessions, norm

_QUERY = ('c-query(fn S => filter('
          'fn o => query(fn v => v.Dept = "eng", o), S), A)')


def test_disabled_session_never_plans():
    s = Session()                       # optimize defaults to False
    s.exec(SETUP)
    out = s.eval(_QUERY)
    assert len(out.elems) == 2
    assert s.planner is None


def test_explain_works_on_unoptimized_session():
    s = Session()
    s.exec(SETUP)
    text = s.explain_plan(_QUERY)
    assert text.startswith("plan: optimized")
    # Explaining built the planner, but evaluation stays naive.
    assert s.planner.stats.planned == 0


def test_reason_not_a_recognized_shape():
    _naive, opt = make_sessions()
    text = opt.explain_plan("c-query(fn S => map(fn o => S, S), A)")
    assert text == ("plan: naive evaluation — "
                    "not a recognized query shape\n"
                    "execution: compiled")


def test_reason_no_class_extent():
    _naive, opt = make_sessions()
    assert opt.explain_plan("{1, 2}") == (
        "plan: naive evaluation — no class extent in the pipeline\n"
        "execution: compiled")


def test_reason_effects():
    naive, opt = make_sessions()
    src = ('c-query(fn S => map(fn o => '
           'query(fn v => update(v, Salary, 0), o), S), A)')
    assert opt.explain_plan(src) == (
        "plan: naive evaluation — the expression may have effects\n"
        "execution: compiled")
    # The fallback still runs the effects — equivalently to naive.
    assert norm(opt.eval(src)) == norm(naive.eval(src))
    salaries = {o.raw.read("Salary").value
                for o in opt.eval("c-query(fn S => S, A)").elems}
    assert salaries == {0}


def test_reason_rebound_structural_builtin():
    naive, opt = make_sessions()
    for s in (naive, opt):
        s.exec("fun filter p s = {}")
    assert opt.explain_plan(_QUERY) == (
        "plan: naive evaluation — a structural builtin "
        "(hom/union/map/filter) is rebound\n"
        "execution: compiled")
    assert norm(opt.eval(_QUERY)) == norm(naive.eval(_QUERY))
    assert opt.eval(_QUERY).elems == []
    assert opt.planner.stats.planned == 0


def test_stats_lifecycle_and_snapshot():
    _naive, opt = make_sessions()
    for _ in range(3):
        opt.eval(_QUERY)
    snap = opt.planner.stats.snapshot()
    assert snap["planned"] == 3
    assert snap["scans"] == 1
    assert snap["mv_builds"] == 1
    assert snap["mv_hits"] == 1
    assert snap["fallbacks"] == 0 and snap["aborts"] == 0


def test_cached_serve_registers_occ_reads():
    _naive, opt = make_sessions()
    for _ in range(3):
        opt.eval(_QUERY)                # entry is cached and serving
    cls = opt.runtime_env.lookup("A")
    tracker = DepTracker()
    opt.machine.store.tracker = tracker
    try:
        opt.eval(_QUERY)
        assert opt.planner.stats.mv_hits >= 2
        # Serving from cache registered the extent read: a concurrent
        # insert into A must conflict with this transaction.
        assert cls.oid in tracker.extents
    finally:
        opt.machine.store.tracker = None


def test_index_serve_registers_occ_reads():
    from repro.query import bulk_insert
    opt = Session(optimize=True)
    opt.exec('val seed = IDView([Name = "S", Dept = "eng", Salary := 1])\n'
             'val C = class {seed} end')
    bulk_insert(opt, "C",
                [{"Name": f"e{i}", "Dept": "eng", "Salary": i}
                 for i in range(40)], mutable=("Salary",))
    opt._ensure_planner().cost.use_materialized_views = False
    src = ('c-query(fn S => filter('
           'fn o => query(fn v => v.Dept = "eng", o), S), C)')
    opt.eval(src)                       # builds the index
    cls = opt.runtime_env.lookup("C")
    tracker = DepTracker()
    opt.machine.store.tracker = tracker
    try:
        opt.eval(src)
        assert opt.planner.stats.index_hits >= 2
        assert cls.oid in tracker.extents
    finally:
        opt.machine.store.tracker = None


def test_prepared_query_goes_through_planner():
    _naive, opt = make_sessions()
    q = opt.prepare(_QUERY)
    for _ in range(3):
        q()
    assert opt.planner.stats.planned == 3
    assert opt.planner.stats.mv_hits == 1

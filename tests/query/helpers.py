"""Shared helpers for the query-planner test suite.

The central tool is :func:`norm`, which renders a value into a plain
Python structure with object identities replaced by first-seen sequence
numbers.  Raw-record and object oids come from a process-global counter,
so two sessions (or two runs in one session, for queries that allocate
fresh records) can only be compared up to a renaming of oids — the same
equivalence that relates any two naive runs to each other.
"""

from __future__ import annotations

from repro.eval.store import Location
from repro.eval.values import (VBool, VBuiltin, VClass, VClosure, VInt,
                               VObject, VRecord, VSet, VString, VUnit)

__all__ = ["norm", "SETUP", "make_sessions"]


def norm(value, table=None):
    """Render ``value`` with oids normalized to first-seen indices."""
    if table is None:
        table = {}

    def oid(o):
        if o not in table:
            table[o] = len(table)
        return table[o]

    if isinstance(value, VUnit):
        return ("unit",)
    if isinstance(value, VInt):
        return ("int", value.value)
    if isinstance(value, VBool):
        return ("bool", value.value)
    if isinstance(value, VString):
        return ("str", value.value)
    if isinstance(value, VRecord):
        cells = {}
        for label in sorted(value.labels()):
            cell = value.cells[label]
            cells[label] = norm(
                cell.value if isinstance(cell, Location) else cell, table)
        return ("rec", oid(value.oid), cells, sorted(value.mutable_labels))
    if isinstance(value, VObject):
        return ("obj", norm(value.raw, table))
    if isinstance(value, VSet):
        return ("set", [norm(e, table) for e in value.elems])
    if isinstance(value, VClass):
        return ("class", oid(value.oid), norm(value.own, table))
    if isinstance(value, (VClosure, VBuiltin)):
        return ("fn",)
    raise AssertionError(f"norm: unhandled value {value!r}")


#: A small two-class world used across the planner tests.
SETUP = '''
    val a0 = IDView([Name = "Ada", Dept = "eng", Salary := 10])
    val a1 = IDView([Name = "Bob", Dept = "ops", Salary := 7])
    val a2 = IDView([Name = "Cyd", Dept = "eng", Salary := 12])
    val A = class {a0, a1, a2} end
    val B = class {a1, a2} end
    val v1 = fn x => [Name = x.Name, Dept = x.Dept]
    val v2 = fn x => [Name = x.Name]
'''


def make_sessions(setup: str = SETUP):
    """A (naive, optimized) pair of sessions over the same setup."""
    from repro import Session

    naive = Session()
    opt = Session(optimize=True)
    naive.exec(setup)
    opt.exec(setup)
    return naive, opt

"""Golden ``explain()`` output per rewrite rule.

These pin the rendered plan text exactly: the rule names reported, the
pipeline shape after rewriting, and the access-path lines.  The fixture
extents are tiny on purpose so the access lines show the below-threshold
full-scan wording.
"""

from __future__ import annotations

import pytest

from repro import Session

_SETUP = '''
    val a0 = IDView([Name = "A0", Dept = "eng", Salary := 10])
    val b0 = IDView([Name = "B0", Dept = "ops", Salary := 5])
    val A = class {a0} end
    val B = class {b0, a0} end
    val v1 = fn x => [Name = x.Name, Dept = x.Dept]
    val v2 = fn x => [Name = x.Name]
'''


@pytest.fixture(scope="module")
def session():
    s = Session(optimize=True)
    s.exec(_SETUP)
    return s


def test_hom_fusion(session):
    assert session.explain_plan(
        'c-query(fn S => map(fn o => query(fn v => v.Name, o), '
        'filter(fn o => query(fn v => v.Dept = "eng", o), S)), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: extent(A)\n"
        '  stage: filter fn o => query(fn v => (eq v.Dept) "eng", o)\n'
        "  stage: map fn o => query(fn v => v.Name, o)\n"
        "rewrites: hom-fusion\n"
        "access: full scan of A (extent ~1 below index threshold 32)\n"
        "execution: compiled")


def test_view_flattening(session):
    assert session.explain_plan(
        'c-query(fn S => map(fn x => x as v2, '
        'map(fn x => x as v1, S)), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: extent(A)\n"
        "  stage: as v1 ; v2\n"
        "rewrites: hom-fusion, view-flattening\n"
        "access: full scan of A (extent ~1)\n"
        "execution: compiled")


def test_select_fusion(session):
    assert session.explain_plan(
        'c-query(fn S => map(fn x => x as v2, '
        'filter(fn o => query(fn v => v.Dept = "eng", o), S)), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: extent(A)\n"
        "  stage: select as v2 where fn o => "
        'query(fn v => (eq v.Dept) "eng", o)\n'
        "rewrites: hom-fusion, select-fusion\n"
        "access: full scan of A (extent ~1 below index threshold 32)\n"
        "execution: compiled")


def test_predicate_pushdown(session):
    assert session.explain_plan(
        'c-query(fn S => c-query(fn D => '
        'relation [l = x, r = d] from x in S, d in D '
        'where (query(fn v => v.Dept = "eng", x)) andalso '
        '(query(fn w => w.Dept = "ops", d)), B), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: prod\n"
        "    pipeline\n"
        "      source: extent(A)\n"
        '      stage: filter fn x => query(fn v => (eq v.Dept) "eng", x)\n'
        "    pipeline\n"
        "      source: extent(B)\n"
        '      stage: filter fn d => query(fn w => (eq w.Dept) "ops", d)\n'
        "  stage: relation [l, r] from x, d where true\n"
        "rewrites: predicate-pushdown\n"
        "access: full scan of A (extent ~1 below index threshold 32)\n"
        "access: full scan of B (extent ~2 below index threshold 32)\n"
        "execution: interpreted — relation-object construction "
        "(relobj) is not compiled yet (line 1, column 33)")


def test_product_elimination(session):
    assert session.explain_plan(
        'c-query(fn S => c-query(fn Tt => intersect(S, Tt), B), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: prod\n"
        "    pipeline\n"
        "      source: extent(A)\n"
        "    pipeline\n"
        "      source: extent(B)\n"
        "  stage: fuse/2 (hash-join)\n"
        "rewrites: product-elimination\n"
        "access: hash join on raw-object identity\n"
        "access: full scan of A (extent ~1)\n"
        "access: full scan of B (extent ~2)\n"
        "execution: compiled")


def test_no_rewrites_needed(session):
    # ``select`` sugar arrives pre-fused: nothing for the rewriter to do.
    assert session.explain_plan(
        'c-query(fn S => select as v2 from S '
        'where fn o => query(fn v => v.Dept = "eng", o), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: extent(A)\n"
        "  stage: select as v2 where fn o => "
        'query(fn v => (eq v.Dept) "eng", o)\n'
        "rewrites: (none)\n"
        "access: full scan of A (extent ~1 below index threshold 32)\n"
        "execution: compiled")


def test_finish_wrapper_rendered(session):
    assert session.explain_plan(
        'c-query(fn S => size(filter('
        'fn o => query(fn v => v.Dept = "eng", o), S)), A)') == (
        "plan: optimized\n"
        "pipeline\n"
        "  source: extent(A)\n"
        '  stage: filter fn o => query(fn v => (eq v.Dept) "eng", o)\n'
        "  finish: size\n"
        "rewrites: (none)\n"
        "access: full scan of A (extent ~1 below index threshold 32)\n"
        "execution: compiled")


def test_naive_fallback_rendered(session):
    out = session.explain_plan("1")
    assert out == ("plan: naive evaluation — "
                   "no class extent in the pipeline\n"
                   "execution: compiled")

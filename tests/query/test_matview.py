"""Materialized views: build, serve, delta maintenance, invalidation."""

from __future__ import annotations

from repro import Session
from repro.query import bulk_insert

from .helpers import SETUP, make_sessions, norm

_QUERY = ('c-query(fn S => filter('
          'fn o => query(fn v => v.Dept = "eng", o), S), A)')


def _stats(session):
    return session._ensure_planner().stats


def _same(naive, opt, src: str) -> None:
    assert norm(opt.eval(src)) == norm(naive.eval(src))


def test_scan_then_build_then_hit():
    naive, opt = make_sessions()
    for _ in range(3):
        _same(naive, opt, _QUERY)
    st = _stats(opt)
    assert st.scans == 1
    assert st.mv_builds == 1
    assert st.mv_hits == 1
    views = opt.planner.views
    assert views.builds == 1 and views.hits == 1


def test_watermark_short_circuits_validation():
    _naive, opt = make_sessions()
    for _ in range(4):
        opt.eval(_QUERY)
    # Hits 3 and 4 happen with an unmoved store stamp: the version walk
    # is skipped but the entry still serves.
    assert _stats(opt).mv_hits == 2


def test_delta_on_insert_and_delete():
    naive, opt = make_sessions()
    for _ in range(3):
        _same(naive, opt, _QUERY)
    for s in (naive, opt):
        s.exec('val d0 = IDView([Name = "Dee", Dept = "eng", Salary := 3])')
        s.exec("insert(d0, A)")
    _same(naive, opt, _QUERY)
    for s in (naive, opt):
        s.exec("delete(a0, A)")
    _same(naive, opt, _QUERY)
    views = opt.planner.views
    assert views.builds == 1            # never recomputed from scratch
    assert views.deltas >= 2
    names = {o.raw.read("Name").value for o in opt.eval(_QUERY).elems}
    assert names == {"Cyd", "Dee"}


def test_mutable_write_read_by_predicate_invalidates():
    naive, opt = make_sessions()
    src = ('c-query(fn S => filter('
           'fn o => query(fn v => v.Salary = 10, o), S), A)')
    for _ in range(3):
        _same(naive, opt, src)
    assert _stats(opt).mv_hits == 1
    # The predicate read every Salary location; writing one cannot be
    # localized and must drop the entry.
    for s in (naive, opt):
        s.exec("query(fn v => update(v, Salary, 12), a1)")
    _same(naive, opt, src)
    views = opt.planner.views
    assert views.invalidations >= 1
    _same(naive, opt, src)              # re-cached after recomputation
    assert views.builds >= 2


def test_global_rebinding_invalidates():
    naive, opt = make_sessions()
    src = "c-query(fn S => map(fn x => x as v2, S), A)"
    for _ in range(3):
        _same(naive, opt, src)
    assert _stats(opt).mv_hits == 1
    # Rebinding the view changes what the query means without touching
    # the store; the globals-identity check catches it.
    for s in (naive, opt):
        s.exec("val v2 = fn x => [Dept = x.Dept]")
    _same(naive, opt, src)
    views = opt.planner.views
    assert views.invalidations >= 1
    # The query re-caches under the new binding and serves again.
    _same(naive, opt, src)
    _same(naive, opt, src)
    assert views.builds >= 2 and views.hits >= 2
    first = opt.eval(src).elems[0]
    dept = opt.machine.apply(first.view, first.raw)
    assert sorted(dept.labels()) == ["Dept"]


def test_rollback_invalidates_cached_view():
    naive, opt = make_sessions()
    for _ in range(3):
        _same(naive, opt, _QUERY)

    class Boom(Exception):
        pass

    for s in (naive, opt):
        s.exec('val d1 = IDView([Name = "Doom", Dept = "eng", Salary := 0])')
        try:
            with s.transaction():
                s.exec("insert(d1, A)")
                raise Boom()
        except Boom:
            pass
    _same(naive, opt, _QUERY)
    names = {o.raw.read("Name").value for o in opt.eval(_QUERY).elems}
    assert "Doom" not in names


def test_relation_results_cached_without_delta_plan():
    # A relation stage allocates fresh records per run: cacheable, but
    # not element-wise, so the entry has no delta plan and any source
    # write drops it.
    naive, opt = make_sessions()
    src = ('c-query(fn S => c-query(fn D => '
           'relation [l = x, r = d] from x in S, d in D '
           'where query(fn v => v.Dept = "eng", x), B), A)')
    for _ in range(3):
        _same(naive, opt, src)
    views = opt.planner.views
    assert views.builds == 1 and views.hits == 1
    entry = next(iter(views.entries.values()))
    assert entry.pairs is None and entry.results is not None
    for s in (naive, opt):
        s.exec('val d2 = IDView([Name = "New", Dept = "eng", Salary := 1])')
        s.exec("insert(d2, B)")
    _same(naive, opt, src)
    assert views.invalidations >= 1


def test_bulk_insert_replaces_extent_once():
    s = Session(optimize=True)
    s.exec(SETUP)
    for _ in range(3):
        s.eval(_QUERY)
    n = bulk_insert(s, "A",
                    [{"Name": f"b{i}", "Dept": "eng", "Salary": i}
                     for i in range(10)], mutable=("Salary",))
    assert n == 10
    out = s.eval(_QUERY)
    assert len(out.elems) == 12         # Ada, Cyd + ten bulk rows
    views = s.planner.views
    assert views.builds == 1 and views.deltas >= 1

"""Bulk extent population."""

from __future__ import annotations

import pytest

from repro import Session
from repro.errors import EvalError
from repro.eval.store import Location
from repro.eval.values import VBool, VInt, VString
from repro.query import bulk_insert

_SEED = '''
    val seed = IDView([Name = "Seed", Dept = "eng", Salary := 1])
    val C = class {seed} end
'''


def _session():
    s = Session()
    s.exec(_SEED)
    return s


def test_bulk_insert_counts_and_extends():
    s = _session()
    n = bulk_insert(s, "C",
                    [{"Name": f"e{i}", "Dept": "ops", "Salary": i}
                     for i in range(5)], mutable=("Salary",))
    assert n == 5
    assert len(s.eval("c-query(fn S => S, C)").elems) == 6


def test_bulk_insert_cell_kinds():
    s = _session()
    bulk_insert(s, "C",
                [{"Name": "x", "Dept": "ops", "Salary": 3, "Senior": True}],
                mutable=("Salary",))
    cls = s.runtime_env.lookup("C")
    raw = cls.own.elems[-1].raw
    assert isinstance(raw.cells["Name"], VString)
    assert isinstance(raw.cells["Senior"], VBool)       # bool, not VInt
    assert isinstance(raw.cells["Salary"], Location)
    assert isinstance(raw.cells["Salary"].value, VInt)
    assert raw.mutable_labels == frozenset({"Salary"})


def test_bulk_inserted_objects_usable_from_surface():
    s = _session()
    bulk_insert(s, "C", [{"Name": "y", "Dept": "qa", "Salary": 9}],
                mutable=("Salary",))
    out = s.eval('c-query(fn S => filter('
                 'fn o => query(fn v => v.Dept = "qa", o), S), C)')
    assert [o.raw.read("Name").value for o in out.elems] == ["y"]
    s.exec('c-query(fn S => map(fn o => '
           'query(fn v => update(v, Salary, 100), o), S), C)')
    assert all(o.raw.read("Salary").value == 100
               for o in s.eval("c-query(fn S => S, C)").elems)


def test_bulk_insert_rejects_non_class():
    s = _session()
    with pytest.raises(EvalError):
        bulk_insert(s, "seed", [{"Name": "z"}])


def test_bulk_insert_rejects_unconvertible_value():
    s = _session()
    with pytest.raises(EvalError):
        bulk_insert(s, "C", [{"Name": object()}])


def test_bulk_insert_journaled_by_transactions():
    s = _session()

    class Boom(Exception):
        pass

    with pytest.raises(Boom):
        with s.transaction():
            bulk_insert(s, "C", [{"Name": "gone", "Dept": "x", "Salary": 0}],
                        mutable=("Salary",))
            raise Boom()
    assert len(s.eval("c-query(fn S => S, C)").elems) == 1

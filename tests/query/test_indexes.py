"""Secondary hash indexes: build, lookup, delta maintenance, staleness."""

from __future__ import annotations

import pytest

from repro import Session
from repro.query import bulk_insert

from .helpers import norm

_SEED = '''
    val seed = IDView([Name = "Seed", Dept = "eng", Salary := 1])
    val C = class {seed} end
'''

_QUERY = ('c-query(fn S => filter('
          'fn o => query(fn v => v.Dept = "eng", o), S), C)')


def _rows(n: int) -> list[dict]:
    return [{"Name": f"e{i}", "Dept": "eng" if i % 3 == 0 else "ops",
             "Salary": i} for i in range(n)]


def _pair(n: int = 40):
    naive, opt = Session(), Session(optimize=True)
    for s in (naive, opt):
        s.exec(_SEED)
        bulk_insert(s, "C", _rows(n), mutable=("Salary",))
    return naive, opt


def _same(naive, opt, src: str) -> None:
    assert norm(opt.eval(src)) == norm(naive.eval(src))


def test_index_serves_equality_filter():
    naive, opt = _pair()
    _same(naive, opt, _QUERY)
    planner = opt.planner
    assert planner.stats.index_hits >= 1
    assert planner.stats.aborts == 0
    assert planner.indexes.builds == 1


def test_index_serves_exact_select():
    naive, opt = _pair()
    src = ('c-query(fn S => select as fn x => [Name = x.Name] from S '
           'where fn o => query(fn v => v.Dept = "ops", o), C)')
    _same(naive, opt, src)
    assert opt.planner.stats.index_hits >= 1


def test_index_with_residual_predicate():
    naive, opt = _pair()
    src = ('c-query(fn S => filter(fn o => query(fn v => '
           '(v.Dept = "eng") andalso (v.Name = "e3"), o), S), C)')
    _same(naive, opt, src)
    assert opt.planner.stats.index_hits >= 1
    assert len(opt.eval(src).elems) == 1


def test_index_delta_on_insert():
    naive, opt = _pair()
    # Keep the repeated query on the index path (a materialized view
    # would otherwise serve it on the second evaluation).
    opt._ensure_planner().cost.use_materialized_views = False
    _same(naive, opt, _QUERY)          # builds the index
    extra = 'val late = IDView([Name = "Late", Dept = "eng", Salary := 99])'
    for s in (naive, opt):
        s.exec(extra)
        s.exec("insert(late, C)")
    _same(naive, opt, _QUERY)
    idx = opt.planner.indexes
    assert idx.builds == 1             # maintained, not rebuilt
    assert idx.deltas >= 1
    names = {o.raw.read("Name").value for o in opt.eval(_QUERY).elems}
    assert "Late" in names


def test_index_delta_on_delete():
    naive, opt = _pair()
    opt._ensure_planner().cost.use_materialized_views = False
    _same(naive, opt, _QUERY)
    for s in (naive, opt):
        s.exec("delete(seed, C)")
    _same(naive, opt, _QUERY)
    idx = opt.planner.indexes
    assert idx.builds == 1
    assert idx.deltas >= 1
    names = {o.raw.read("Name").value for o in opt.eval(_QUERY).elems}
    assert "Seed" not in names


def test_rollback_invalidates_by_version_stamp():
    naive, opt = _pair()
    _same(naive, opt, _QUERY)
    # A rolled-back insert restores the extent *without* a notification;
    # only the version stamps catch it.
    class Boom(Exception):
        pass

    for s in (naive, opt):
        s.exec('val doomed = '
               'IDView([Name = "Doomed", Dept = "eng", Salary := 0])')
        with pytest.raises(Boom):
            with s.transaction():
                s.exec("insert(doomed, C)")
                raise Boom()
    _same(naive, opt, _QUERY)
    names = {o.raw.read("Name").value for o in opt.eval(_QUERY).elems}
    assert "Doomed" not in names


def test_mutable_field_is_blacklisted():
    naive, opt = _pair()
    src = ('c-query(fn S => filter('
           'fn o => query(fn v => v.Salary = 3, o), S), C)')
    _same(naive, opt, src)
    cls = opt.runtime_env.lookup("C")
    assert (cls.oid, "Salary") in opt.planner.indexes.blacklist
    assert opt.planner.stats.index_hits == 0


def test_small_extent_skips_index():
    naive, opt = _pair(n=5)            # below index_min_extent = 32
    _same(naive, opt, _QUERY)
    assert opt.planner.stats.index_hits == 0
    assert opt.planner.indexes.builds == 0

"""Property test: optimized evaluation ≡ naive evaluation.

A naive session and an optimized session execute the *same* randomized
interleaving of queries and mutations.  After every query the two result
values must agree under :func:`~tests.query.helpers.norm` — equality up
to the renaming of freshly allocated oids, the equivalence that also
relates any two naive runs to each other.  Each query additionally runs
twice on the optimized session, so the scan → materialize → cache-hit
path is exercised (and must keep agreeing) whenever the random program
repeats itself.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from .helpers import make_sessions, norm

_SETUP = '''
    val c0 = IDView([Name = "c0", Dept = "eng", Salary := 1])
    val d0 = IDView([Name = "d0", Dept = "ops", Salary := 2])
    val C = class {c0} end
    val D = class {d0, c0} end
    val nameview = fn x => [Name = x.Name]
'''

_DEPTS = ["eng", "ops", "qa"]

# Query templates; {d} is a department constant chosen by the strategy.
_QUERIES = [
    'c-query(fn S => filter(fn o => query(fn v => v.Dept = "{d}", o), S), C)',
    'c-query(fn S => map(fn o => query(fn v => v.Name, o), '
    'filter(fn o => query(fn v => v.Dept = "{d}", o), S)), C)',
    'c-query(fn S => select as nameview from S '
    'where fn o => query(fn v => v.Dept = "{d}", o), C)',
    'c-query(fn S => size(filter('
    'fn o => query(fn v => v.Dept = "{d}", o), S)), C)',
    'c-query(fn S => filter(fn o => query(fn v => v.Salary = 1, o), S), C)',
    'c-query(fn S => c-query(fn Tt => intersect(S, Tt), D), C)',
    'c-query(fn S => c-query(fn Dd => '
    'relation [l = x, r = y] from x in S, y in Dd '
    'where query(fn v => v.Dept = "{d}", x), D), C)',
    'c-query(fn S => map(fn x => x as nameview, S), D)',
]

_query_op = st.tuples(st.just("query"),
                      st.integers(0, len(_QUERIES) - 1),
                      st.sampled_from(_DEPTS))
_insert_op = st.tuples(st.just("insert"),
                       st.sampled_from(_DEPTS),
                       st.integers(0, 3),
                       st.sampled_from(["C", "D"]))
_delete_op = st.tuples(st.just("delete"), st.integers(0, 40),
                       st.sampled_from(["C", "D"]))
_update_op = st.tuples(st.just("update"), st.integers(0, 40),
                       st.integers(0, 5))

_programs = st.lists(
    st.one_of(_query_op, _insert_op, _delete_op, _update_op),
    min_size=1, max_size=25)


@settings(max_examples=30, deadline=None)
@given(ops=_programs)
def test_optimized_equals_naive(ops):
    naive, opt = make_sessions(_SETUP)
    names = ["c0", "d0"]                # bound object names, both sessions
    fresh = 0
    planned = 0
    for op in ops:
        kind = op[0]
        if kind == "insert":
            _, dept, salary, cls = op
            name = f"r{fresh}"
            fresh += 1
            src = (f'val {name} = IDView([Name = "{name}", '
                   f'Dept = "{dept}", Salary := {salary}])')
            for s in (naive, opt):
                s.exec(src)
                s.exec(f"insert({name}, {cls})")
            names.append(name)
        elif kind == "delete":
            _, pick, cls = op
            name = names[pick % len(names)]
            for s in (naive, opt):
                s.exec(f"delete({name}, {cls})")
        elif kind == "update":
            _, pick, salary = op
            name = names[pick % len(names)]
            for s in (naive, opt):
                s.exec(f"query(fn v => update(v, Salary, {salary}), {name})")
        else:
            _, qi, dept = op
            src = _QUERIES[qi].format(d=dept)
            expected = norm(naive.eval(src))
            assert norm(opt.eval(src)) == expected
            # Second run: may serve a materialized view or index.
            assert norm(opt.eval(src)) == expected
            planned += 2
    stats = opt._ensure_planner().stats
    assert stats.aborts == 0
    # Mutation statements fall back by design (they are not queries);
    # every actual query must have planned.
    assert stats.planned == planned

"""The paper's alternative delete semantics (Section 4.1), as derived ops."""

import pytest

from repro import Session
from repro.classes.operations import (block_object, blocking_class_source,
                                      cascade_delete, unblock_object)

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


@pytest.fixture()
def s():
    sess = Session()
    sess.exec('val o1 = IDView([Name = "o1", Sex = "f"])')
    sess.exec('val o2 = IDView([Name = "o2", Sex = "f"])')
    sess.exec("val Base = class {o1, o2} end")
    sess.exec("val Derived = class {} includes Base "
              "as fn x => [Name = x.Name, Sex = x.Sex] "
              "where fn i => true end")
    return sess


def _val(s, name):
    return s.runtime_env.lookup(name)


def test_plain_delete_does_not_cascade(s):
    # the paper's chosen semantics, for contrast
    s.eval("delete((o1 as fn x => [Name = x.Name, Sex = x.Sex]), Derived)")
    assert s.eval_py(f"c-query({NAMES}, Derived)") == ["o1", "o2"]


def test_cascade_delete_removes_from_source(s):
    removed = cascade_delete(s.machine, _val(s, "Derived"), _val(s, "o1"))
    assert removed == 1  # only Base's own extent held o1
    assert s.eval_py(f"c-query({NAMES}, Derived)") == ["o2"]
    assert s.eval_py(f"c-query({NAMES}, Base)") == ["o2"]


def test_cascade_delete_through_chain(s):
    s.exec("val Top = class {} includes Derived "
           "as fn x => [Name = x.Name, Sex = x.Sex] "
           "where fn i => true end")
    cascade_delete(s.machine, _val(s, "Top"), _val(s, "o2"))
    assert s.eval_py(f"c-query({NAMES}, Top)") == ["o1"]
    assert s.eval_py(f"c-query({NAMES}, Base)") == ["o1"]


def test_cascade_delete_handles_cycles(s):
    s.exec('val seed = IDView([Name = "seed"])')
    s.exec("val A = class {seed} includes B as fn x => [Name = x.Name] "
           "where fn i => true end "
           "and B = class {} includes A as fn x => [Name = x.Name] "
           "where fn i => true end")
    removed = cascade_delete(s.machine, _val(s, "B"), _val(s, "seed"))
    assert removed == 1
    assert s.eval_py(f"c-query({NAMES}, A)") == []


def test_cascade_delete_counts_multiple_extents(s):
    # the object sits in two own extents (Derived's own + Base's own)
    s.eval("insert((o1 as fn x => [Name = x.Name, Sex = x.Sex]), Derived)")
    removed = cascade_delete(s.machine, _val(s, "Derived"), _val(s, "o1"))
    assert removed == 2


def test_blocking_class_in_language(s):
    decl = blocking_class_source(
        "Visible", "Base", "fn x => [Name = x.Name, Sex = x.Sex]")
    s.exec(decl)
    assert s.eval_py(f"c-query({NAMES}, Visible)") == ["o1", "o2"]
    # blocking delete: insert into the exclusion class
    s.eval("insert((o1 as fn x => [Name = x.Name, Sex = x.Sex]), "
           "Visible_blocked)")
    assert s.eval_py(f"c-query({NAMES}, Visible)") == ["o2"]
    # the source class is untouched (unlike cascading delete)
    assert s.eval_py(f"c-query({NAMES}, Base)") == ["o1", "o2"]
    # unblock by deleting from the exclusion class
    s.eval("delete((o1 as fn x => [Name = x.Name, Sex = x.Sex]), "
           "Visible_blocked)")
    assert s.eval_py(f"c-query({NAMES}, Visible)") == ["o1", "o2"]


def test_blocking_class_with_predicate(s):
    decl = blocking_class_source(
        "Fs", "Base", "fn x => [Name = x.Name]",
        'fn o => query(fn v => v.Sex = "f", o)')
    s.exec(decl)
    assert s.eval_py(f"c-query({NAMES}, Fs)") == ["o1", "o2"]


def test_block_object_runtime_helpers(s):
    decl = blocking_class_source(
        "V2", "Base", "fn x => [Name = x.Name, Sex = x.Sex]")
    s.exec(decl)
    blocked = _val(s, "V2_blocked")
    block_object(s.machine, blocked, _val(s, "o2"))
    assert s.eval_py(f"c-query({NAMES}, V2)") == ["o1"]
    unblock_object(s.machine, blocked, _val(s, "o2"))
    assert s.eval_py(f"c-query({NAMES}, V2)") == ["o1", "o2"]


def test_blocking_respects_objeq(s):
    # blocking any view of the object blocks the object
    decl = blocking_class_source(
        "V3", "Base", "fn x => [Name = x.Name, Sex = x.Sex]")
    s.exec(decl)
    s.eval("insert((o1 as fn x => [Name = \"alias\", Sex = x.Sex]), "
           "V3_blocked)")
    assert s.eval_py(f"c-query({NAMES}, V3)") == ["o2"]

"""Figure 4 typing rules: (class), (cquery), (insert), (delete)."""

import pytest

from repro.errors import UnificationError
from tests.conftest import typeof


def test_empty_class_polymorphic_shape():
    # class {} end is a class at an undetermined element type
    t = typeof("class {} end")
    assert t == "forall t1::U. class(t1)" or t.startswith("class(")


def test_class_of_objects():
    assert typeof("class {IDView([A = 1])} end") == "class([A = int])"


def test_class_own_must_be_object_set():
    with pytest.raises(UnificationError):
        typeof("class {1, 2} end")
    with pytest.raises(UnificationError):
        typeof("class {[A = 1]} end")


def test_include_view_determines_element_type():
    t = typeof("fn C => class {} includes C as fn x => [N = x.Name] "
               "where fn o => true end")
    assert t == ("forall t1::U. forall t2::[[Name = t1]]. "
                 "class(t2) -> class([N = t1])")


def test_include_source_must_be_class():
    with pytest.raises(UnificationError):
        typeof("class {} includes {IDView([A = 1])} as fn x => x "
               "where fn o => true end")


def test_include_pred_takes_object_returns_bool():
    # predicate is typed at obj(tau) -> bool: it can query the object
    t = typeof("fn C => class {} includes C as fn x => [N = x.N] "
               "where fn o => query(fn x => x.N > 0, o) end")
    assert "class" in t
    with pytest.raises(UnificationError):
        typeof("fn C => class {} includes C as fn x => x "
               "where fn o => 42 end")


def test_multi_source_include_product_typing():
    # with m sources the view takes the flat product of the view types
    t = typeof(
        "fn C1 => fn C2 => class {} includes C1, C2 "
        "as fn p => [A = (p.1).X, B = (p.2).Y] where fn o => true end")
    assert t == ("forall t1::U. forall t2::[[X = t1]]. forall t3::U. "
                 "forall t4::[[Y = t3]]. class(t2) -> class(t4) -> "
                 "class([A = t1, B = t3])")


def test_own_and_include_types_unify():
    with pytest.raises(UnificationError):
        typeof("fn C => class {IDView([A = 1])} "
               "includes C as fn x => [B = true] where fn o => true end")


def test_cquery_type():
    t = typeof("fn C => c-query(fn S => size(S), C)")
    assert t == "forall t1::U. class(t1) -> int"


def test_cquery_function_takes_object_set():
    t = typeof("fn C => c-query(fn S => S, C)")
    assert t == "forall t1::U. class(t1) -> {obj(t1)}"


def test_cquery_requires_class():
    with pytest.raises(UnificationError):
        typeof("c-query(fn S => S, {IDView([A = 1])})")


def test_insert_type():
    t = typeof("fn o => fn C => insert(o, C)")
    assert t == "forall t1::U. obj(t1) -> class(t1) -> unit"


def test_insert_element_type_must_match():
    with pytest.raises(UnificationError):
        typeof("insert(IDView([A = 1]), class {IDView([B = true])} end)")


def test_delete_type():
    t = typeof("fn o => fn C => delete(o, C)")
    assert t == "forall t1::U. obj(t1) -> class(t1) -> unit"


def test_classes_are_first_class():
    # a class-creating function, as Section 4.1 advertises
    t = typeof("fn S => class S end")
    assert t == "forall t1::U. {obj(t1)} -> class(t1)"


def test_class_value_restriction():
    # class expressions allocate: they do not let-generalize
    with pytest.raises(Exception):
        typeof("let C = class {} end in "
               "let a = insert(IDView([A = 1]), C) in "
               "insert(IDView([B = true]), C) end end")

"""Section 4.4: recursive class definitions — restriction, semantics,
termination (Proposition 5) and the least-solution reading."""

import pytest

from repro import Session
from repro.classes.recursion import check_class_bindings, free_vars
from repro.errors import RecursiveClassError
from repro.syntax.parser import parse_expression

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


@pytest.fixture()
def s():
    return Session()


# -- the syntactic restriction ------------------------------------------------

def test_free_vars_respects_binders():
    e = parse_expression("fn x => x y")
    assert free_vars(e) == {"y"}
    e2 = parse_expression("let x = z in x end")
    assert free_vars(e2) == {"z"}
    e3 = parse_expression("fix f. fn n => f n")
    assert free_vars(e3) == set()


def test_restriction_rejects_identifier_in_own_extent(s):
    with pytest.raises(RecursiveClassError):
        s.exec("val A = class c-query(fn S => S, A) end")


def test_restriction_rejects_identifier_in_view(s):
    src = ("let A = class {} includes B "
           "as fn x => [N = c-query(fn S => size(S), A)] "
           "where fn o => true end "
           "and B = class {} end in 0 end")
    with pytest.raises(RecursiveClassError):
        s.eval(src)


def test_restriction_rejects_identifier_in_pred(s):
    # the paper's ill-founded C1 = C \\ C2, C2 = C \\ C1 example shape
    src = ("let C = class {} end in "
           "let C1 = class {} includes C as fn x => x "
           "where fn c => c-query(fn S => not(member(c, S)), C2) end "
           "and C2 = class {} includes C as fn x => x "
           "where fn c => c-query(fn S => not(member(c, S)), C1) end "
           "in 0 end end")
    with pytest.raises(RecursiveClassError):
        s.eval(src)


def test_restriction_rejects_identifier_inside_source_expression(s):
    # a source may BE an identifier but not an expression computing with one
    src = ("let A = class {} includes (let z = B in z end) as fn x => x "
           "where fn o => true end "
           "and B = class {} end in 0 end")
    with pytest.raises(RecursiveClassError):
        s.eval(src)


def test_restriction_allows_external_class_expressions(s):
    s.exec("val Ext = class {IDView([Name = \"e\"])} end")
    out = s.eval_py(
        "let A = class {} includes Ext as fn x => [Name = x.Name] "
        "where fn o => true end in "
        f"c-query({NAMES}, A) end")
    assert out == ["e"]


def test_duplicate_identifiers_rejected():
    from repro.core import terms as T
    cls = T.ClassExpr(T.SetExpr([]), [])
    with pytest.raises(RecursiveClassError):
        check_class_bindings(["A", "A"], [("A", cls), ("A", cls)])


# -- semantics ----------------------------------------------------------------

def test_self_recursive_class_terminates(s):
    # A includes itself: the L-set cuts the cycle; extent = own extent.
    s.exec('val o = IDView([Name = "self"])')
    out = s.eval_py(
        "let A = class {o} includes A as fn x => [Name = x.Name] "
        "where fn i => true end "
        f"in c-query({NAMES}, A) end")
    assert out == ["self"]


def test_two_cycle_mutual_import(s):
    s.exec('val a = IDView([Name = "a"])')
    s.exec('val b = IDView([Name = "b"])')
    out = s.eval_py(
        "let A = class {a} includes B as fn x => [Name = x.Name] "
        "where fn i => true end "
        "and B = class {b} includes A as fn x => [Name = x.Name] "
        "where fn i => true end "
        f"in (c-query({NAMES}, A), c-query({NAMES}, B)) end")
    assert sorted(out["1"]) == ["a", "b"]
    assert sorted(out["2"]) == ["a", "b"]


def test_three_cycle(s):
    s.exec('val x = IDView([Name = "x"])')
    out = s.eval_py(
        "let A = class {x} includes C as fn v => [Name = v.Name] "
        "where fn i => true end "
        "and B = class {} includes A as fn v => [Name = v.Name] "
        "where fn i => true end "
        "and C = class {} includes B as fn v => [Name = v.Name] "
        "where fn i => true end "
        f"in (c-query({NAMES}, A), c-query({NAMES}, C)) end")
    assert out["1"] == ["x"]
    assert out["2"] == ["x"]


def test_least_solution_empty_cycle(s):
    # no own extents anywhere: the least solution is everything empty
    out = s.eval_py(
        "let A = class {} includes B as fn x => x where fn i => true end "
        "and B = class {} includes A as fn x => x where fn i => true end "
        "in (c-query(fn S => size(S), A), c-query(fn S => size(S), B)) end")
    assert out == {"1": 0, "2": 0}


def test_insert_propagates_through_cycle(s):
    s.exec('val seed = IDView([Name = "seed", Cat = "x"])')
    s.exec('''
        val A = class {}
          includes B as fn v => [Name = v.Name, Cat = v.Cat]
          where fn i => true
        end
        and B = class {} end
    ''')
    assert s.eval_py(f"c-query({NAMES}, A)") == []
    s.eval("insert(seed, B)")
    assert s.eval_py(f"c-query({NAMES}, A)") == ["seed"]


def test_fig7_category_splitting(s):
    # the Figure 7 example: objects inserted into FemaleMember are shared
    # back to Staff or Student by Category
    s.exec('''
        val Staff = class {}
          includes FemaleMember
            as fn f => [Name = f.Name, Sex = "female"]
            where fn f => query(fn x => x.Category = "staff", f)
        end
        and Student = class {}
          includes FemaleMember
            as fn f => [Name = f.Name, Sex = "female"]
            where fn f => query(fn x => x.Category = "student", f)
        end
        and FemaleMember = class {}
          includes Staff
            as fn st => [Name = st.Name, Category = "staff"]
            where fn st => query(fn x => x.Sex = "female", st)
          includes Student
            as fn st => [Name = st.Name, Category = "student"]
            where fn st => query(fn x => x.Sex = "female", st)
        end
    ''')
    s.exec('val f1 = (IDView([Name = "f1", Role = "staff"]) '
           'as fn x => [Name = x.Name, Category = x.Role])')
    s.exec('val f2 = (IDView([Name = "f2", Role = "student"]) '
           'as fn x => [Name = x.Name, Category = x.Role])')
    s.eval("insert(f1, FemaleMember)")
    s.eval("insert(f2, FemaleMember)")
    assert s.eval_py(f"c-query({NAMES}, Staff)") == ["f1"]
    assert s.eval_py(f"c-query({NAMES}, Student)") == ["f2"]
    assert s.eval_py(f"c-query({NAMES}, FemaleMember)") == ["f1", "f2"]


def test_termination_bound_proposition5(s):
    # |L| grows by one along every nested call chain, so call chains are
    # bounded by the number of classes in the group (Prop 5).
    s.exec('''
        val A = class {}
          includes B as fn x => x where fn i => true
          includes C as fn x => x where fn i => true
        end
        and B = class {}
          includes A as fn x => x where fn i => true
          includes C as fn x => x where fn i => true
        end
        and C = class {}
          includes A as fn x => x where fn i => true
          includes B as fn x => x where fn i => true
        end
    ''')
    s.metrics.reset()
    s.eval("c-query(fn S => size(S), A)")
    # worst case for n=3, two clauses each: well under n! * clauses bound
    assert 0 < s.metrics.extent_calls <= 30


def test_recursive_group_objects_shared_not_copied(s):
    s.exec('val o = IDView([Name = "o", Cat = "staff"])')
    s.exec('''
        val P = class {o}
          includes Q as fn v => [Name = v.Name, Cat = v.Cat]
          where fn i => true
        end
        and Q = class {}
          includes P as fn v => [Name = v.Name, Cat = v.Cat]
          where fn i => true
        end
    ''')
    assert s.eval_py(
        "c-query(fn S => exists(fn m => objeq(m, o), S), Q)") is True


def test_top_level_val_and_group_matches_let_form(s):
    s.exec('val seed = IDView([Name = "n"])')
    out_let = s.eval_py(
        "let A = class {seed} includes B as fn x => [Name = x.Name] "
        "where fn i => true end "
        "and B = class {} includes A as fn x => [Name = x.Name] "
        "where fn i => true end "
        f"in c-query({NAMES}, B) end")
    s.exec("val A2 = class {seed} includes B2 as fn x => [Name = x.Name] "
           "where fn i => true end "
           "and B2 = class {} includes A2 as fn x => [Name = x.Name] "
           "where fn i => true end")
    out_val = s.eval_py(f"c-query({NAMES}, B2)")
    assert out_let == out_val == ["n"]

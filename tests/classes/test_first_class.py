"""Classes as first-class values: "various powerful programming styles
with classes, such as using class creating functions" (Section 4.1)."""

import pytest

from repro import Session

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


@pytest.fixture()
def s():
    return Session()


def test_class_creating_function(s):
    s.exec("fun singleton o = class {o} end")
    assert s.typeof_str("singleton") == \
        "forall t1::U. obj(t1) -> class(t1)"
    s.exec('val C = singleton (IDView([Name = "n"]))')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["n"]


def test_restriction_class_factory(s):
    # a function that derives a filtered, re-viewed class from any class
    s.exec('''
        fun women C = class {}
          includes C as fn x => [Name = x.Name]
          where fn o => query(fn v => v.Sex = "female", o)
        end
    ''')
    s.exec('val Base = class {IDView([Name = "a", Sex = "female"]), '
           'IDView([Name = "b", Sex = "male"])} end')
    s.exec("val W = women Base")
    assert s.eval_py(f"c-query({NAMES}, W)") == ["a"]


def test_factory_is_polymorphic_over_extra_fields(s):
    s.exec('''
        fun women C = class {}
          includes C as fn x => [Name = x.Name]
          where fn o => query(fn v => v.Sex = "female", o)
        end
    ''')
    # a source with extra fields works too — kinded polymorphism
    s.exec('val Rich = class {IDView([Name = "z", Sex = "female", '
           "Pay := 9])} end")
    assert s.eval_py(f"c-query({NAMES}, women Rich)") == ["z"]


def test_classes_in_records_and_sets(s):
    s.exec('val C1 = class {IDView([Name = "x"])} end')
    s.exec('val C2 = class {IDView([Name = "y"])} end')
    s.exec("val pair = [first = C1, second = C2]")
    assert s.eval_py(f"c-query({NAMES}, pair.second)") == ["y"]
    # classes have identity: sets of classes dedup by it
    assert s.eval_py("size({C1, C1, C2})") == 2


def test_class_returned_from_query(s):
    # a function choosing between classes
    s.exec('val A = class {IDView([Name = "a"])} end')
    s.exec('val B = class {IDView([Name = "b"])} end')
    s.exec("fun pick b = if b then A else B")
    assert s.eval_py(f"c-query({NAMES}, pick true)") == ["a"]
    assert s.eval_py(f"c-query({NAMES}, pick false)") == ["b"]


def test_chain_factory_applied_repeatedly(s):
    s.exec('''
        fun narrow C = class {}
          includes C as fn x => [Name = x.Name, N = x.N]
          where fn o => query(fn v => v.N > 1, o)
        end
    ''')
    s.exec('val Base = class {IDView([Name = "p", N = 5]), '
           'IDView([Name = "q", N = 0])} end')
    assert s.eval_py(
        f"c-query({NAMES}, narrow (narrow (narrow Base)))") == ["p"]


def test_factory_with_parameterized_predicate(s):
    # "parametric classes" in the sense of Section 5's outlook
    s.exec('''
        fun at_least n = fn C => class {}
          includes C as fn x => [Name = x.Name, N = x.N]
          where fn o => query(fn v => v.N >= n, o)
        end
    ''')
    s.exec('val Base = class {IDView([Name = "lo", N = 1]), '
           'IDView([Name = "hi", N = 10])} end')
    assert s.eval_py(f"c-query({NAMES}, (at_least 5) Base)") == ["hi"]
    assert s.eval_py(f"c-query({NAMES}, (at_least 0) Base)") == \
        ["lo", "hi"]

"""Figure 5 / Section 4.4: translation of classes (Proposition 4)."""

from repro import Session
from repro.classes.translate import translate_classes
from repro.core import terms as T
from repro.core.infer import infer
from repro.lang.pyconv import value_to_python
from repro.objects.translate import (internal_representation_matches,
                                     translate_objects)

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


def contains_class_nodes(term: T.Term) -> bool:
    if isinstance(term, (T.ClassExpr, T.CQuery, T.Insert, T.Delete,
                         T.LetClasses)):
        return True
    return any(contains_class_nodes(sub) for sub in T.iter_subterms(term))


def run_both(src: str, repaired: bool = True):
    s = Session()
    env = s.type_env
    term = s.parse(src)
    t_ext = infer(term, env)
    mid = translate_classes(term, repaired=repaired)
    assert not contains_class_nodes(mid)
    t_mid = infer(mid, env)
    assert internal_representation_matches(t_mid, t_ext)
    core = translate_objects(mid)
    infer(core, env)
    native = s.eval_py(src)
    translated = value_to_python(s.machine.eval(core, s.runtime_env),
                                 s.machine)
    return native, translated


SIMPLE = (
    'let o = IDView([Name = "n", Sex = "f"]) in '
    "let Base = class {o} end in "
    "let D = class {} includes Base as fn x => [Name = x.Name] "
    'where fn i => query(fn x => x.Sex = "f", i) end in '
    f"c-query({NAMES}, D) end end end")


def test_simple_class_translation_agrees():
    native, translated = run_both(SIMPLE)
    assert native == translated == ["n"]


def test_simple_class_translation_literal_mode_agrees():
    # without inserts, literal Figure 5 and the repaired form coincide
    native, translated = run_both(SIMPLE, repaired=False)
    assert native == translated == ["n"]


INSERT_PROG = (
    'let C = class {IDView([Name = "a"])} end in '
    'let u = insert(IDView([Name = "b"]), C) in '
    f"c-query({NAMES}, C) end end")


def test_insert_visible_in_repaired_mode():
    native, translated = run_both(INSERT_PROG, repaired=True)
    assert native == translated == ["a", "b"]


def test_figure5_literal_misses_inserts():
    """The documented discrepancy (DESIGN.md §2): Figure 5's Ext closes
    over the creation-time extent, so inserts are invisible to queries."""
    s = Session()
    term = s.parse(INSERT_PROG)
    lit = translate_objects(translate_classes(term, repaired=False))
    infer(lit, s.type_env)
    out = value_to_python(s.machine.eval(lit, s.runtime_env), s.machine)
    assert out == ["a"]  # 'b' lost — unlike the native semantics
    assert s.eval_py(INSERT_PROG) == ["a", "b"]


def test_delete_translation_repaired():
    src = (
        'let o = IDView([Name = "a"]) in '
        'let C = class {o, IDView([Name = "b"])} end in '
        "let u = delete(o, C) in "
        f"c-query({NAMES}, C) end end end")
    native, translated = run_both(src)
    assert native == translated == ["b"]


def test_multi_include_translation():
    src = (
        'let both = IDView([Name = "both"]) in '
        'let c1 = class {both, IDView([Name = "c1"])} end in '
        'let c2 = class {both, IDView([Name = "c2"])} end in '
        "let I = class {} includes c1, c2 "
        "as fn p => [Name = (p.1).Name] where fn o => true end in "
        f"c-query({NAMES}, I) end end end end")
    native, translated = run_both(src)
    assert native == translated == ["both"]


def test_chained_class_translation():
    src = (
        'let o = IDView([Name = "x"]) in '
        "let A = class {o} end in "
        "let B = class {} includes A as fn v => [Name = v.Name] "
        "where fn i => true end in "
        "let C = class {} includes B as fn v => [Name = v.Name] "
        "where fn i => true end in "
        f"c-query({NAMES}, C) end end end end")
    native, translated = run_both(src)
    assert native == translated == ["x"]


REC_PROG = (
    'let a = IDView([Name = "a", Sex = "f", Cat = "s"]) in '
    'let b = IDView([Name = "b", Sex = "f", Cat = "s"]) in '
    "let P = class {a} includes Q "
    "as fn v => [Name = v.Name, Sex = v.Sex, Cat = v.Cat] "
    "where fn i => true end "
    "and Q = class {b} includes P "
    "as fn v => [Name = v.Name, Sex = v.Sex, Cat = v.Cat] "
    "where fn i => true end "
    f"in (c-query({NAMES}, P), c-query({NAMES}, Q)) end end end")


def test_recursive_translation_agrees():
    native, translated = run_both(REC_PROG)
    assert native == translated
    assert sorted(native["1"]) == ["a", "b"]


def test_recursive_translation_literal_mode():
    native, translated = run_both(REC_PROG, repaired=False)
    assert sorted(translated["2"]) == ["a", "b"]


def test_recursive_translation_insert_repaired():
    src = (
        "let P = class {} includes Q as fn v => [Name = v.Name] "
        "where fn i => true end "
        "and Q = class {} end "
        'in let u = insert(IDView([Name = "late"]), Q) in '
        f"c-query({NAMES}, P) end end")
    native, translated = run_both(src, repaired=True)
    assert native == translated == ["late"]


def test_self_recursive_translation_terminates():
    src = (
        'let A = class {IDView([Name = "s"])} includes A '
        "as fn v => [Name = v.Name] where fn i => true end "
        f"in c-query({NAMES}, A) end")
    native, translated = run_both(src)
    assert native == translated == ["s"]


def test_translation_output_reparses():
    """Pretty printing the translated program yields valid surface syntax
    — except for gensym names, which we rewrite to plain identifiers."""
    import re

    from repro.syntax.parser import parse_expression
    from repro.syntax.pretty import pretty_term
    s = Session()
    term = s.parse(SIMPLE)
    core = translate_objects(translate_classes(term))
    text = pretty_term(core)
    text = re.sub(r"([A-Za-z_][A-Za-z0-9_]*)%(\d+)", r"\1__\2", text)
    reparsed = parse_expression(text)
    infer(reparsed, s.type_env)

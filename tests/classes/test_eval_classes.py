"""Evaluation of classes: lazy extents, sharing, insert/delete, priority."""

import pytest

from repro import Session

EXTENT = "fn S => map(fn o => query(fn v => v, o), S)"
NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


@pytest.fixture()
def s():
    return Session()


def test_own_extent_only(s):
    s.exec('val C = class {IDView([Name = "a"]), IDView([Name = "b"])} end')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["a", "b"]


def test_include_with_predicate_and_view(s):
    s.exec('val p1 = IDView([Name = "p1", N = 1])')
    s.exec('val p2 = IDView([Name = "p2", N = 2])')
    s.exec("val Base = class {p1, p2} end")
    s.exec("val Big = class {} includes Base "
           "as fn x => [Name = x.Name, Doubled = (x.N) * 2] "
           "where fn o => query(fn x => x.N > 1, o) end")
    out = s.eval_py(f"c-query({EXTENT}, Big)")
    assert out == [{"Name": "p2", "Doubled": 4}]


def test_extents_are_lazy(s):
    # no extent computation happens at class definition time
    s.exec('val Base = class {IDView([Name = "x", N = 1])} end')
    s.metrics.reset()
    s.exec("val Derived = class {} includes Base as fn x => [Name = x.Name] "
           "where fn o => true end")
    assert s.metrics.extent_computations == 0
    s.eval_py(f"c-query({NAMES}, Derived)")
    assert s.metrics.extent_computations == 1


def test_updates_to_source_visible_after_definition(s):
    # lazy extents: objects inserted into the source class later are shared
    s.exec('val Base = class {IDView([Name = "old", N = 1])} end')
    s.exec("val Derived = class {} includes Base as fn x => [Name = x.Name] "
           "where fn o => true end")
    assert s.eval_py(f"c-query({NAMES}, Derived)") == ["old"]
    s.eval('insert(IDView([Name = "new", N = 2]), Base)')
    assert s.eval_py(f"c-query({NAMES}, Derived)") == ["old", "new"]


def test_insert_visible_to_queries(s):
    # the prose of Section 4.2 (and our Figure 5 repair)
    s.exec("val C = class {} end")
    s.eval('insert(IDView([Name = "n"]), C)')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["n"]


def test_insert_duplicate_objeq_is_noop(s):
    s.exec('val o = IDView([Name = "n"])')
    s.exec("val C = class {o} end")
    s.eval('insert((o as fn x => [Name = "other"]), C)')
    # the original object (and its view) wins
    assert s.eval_py(f"c-query({NAMES}, C)") == ["n"]


def test_delete_removes_by_objeq(s):
    s.exec('val o = IDView([Name = "n"])')
    s.exec('val p = IDView([Name = "m"])')
    s.exec("val C = class {o, p} end")
    # delete via a different view of the same raw object
    s.eval('delete((o as fn x => [Name = "zzz"]), C)')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["m"]


def test_delete_does_not_block_inclusion(s):
    # the paper's chosen delete semantics: it removes from the *own*
    # extent only; an object still included from a source class remains.
    s.exec('val o = IDView([Name = "n"])')
    s.exec("val Base = class {o} end")
    s.exec("val C = class {} includes Base as fn x => [Name = x.Name] "
           "where fn x => true end")
    s.eval("delete((o as fn x => [Name = x.Name]), C)")
    assert s.eval_py(f"c-query({NAMES}, C)") == ["n"]


def test_own_extent_wins_over_inclusion(s):
    s.exec('val o = IDView([Name = "raw"])')
    s.exec("val Base = class {o} end")
    s.exec('''val C = class {(o as fn x => [Name = "own-view"])}
        includes Base as fn x => [Name = "included-view"]
        where fn x => true end''')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["own-view"]


def test_earlier_include_clause_wins(s):
    s.exec('val o = IDView([Name = "raw"])')
    s.exec("val B1 = class {o} end")
    s.exec("val B2 = class {o} end")
    s.exec('''val C = class {}
        includes B1 as fn x => [Name = "first"] where fn x => true
        includes B2 as fn x => [Name = "second"] where fn x => true end''')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["first"]


def test_multi_source_include_is_intersection(s):
    s.exec('val both = IDView([Name = "both"])')
    s.exec('val only1 = IDView([Name = "only1"])')
    s.exec('val only2 = IDView([Name = "only2"])')
    s.exec("val C1 = class {both, only1} end")
    s.exec("val C2 = class {both, only2} end")
    s.exec("val Both = class {} includes C1, C2 "
           "as fn p => [Name = (p.1).Name] where fn o => true end")
    assert s.eval_py(f"c-query({NAMES}, Both)") == ["both"]


def test_multi_source_pred_can_query_product(s):
    s.exec('val o = IDView([Name = "o", N = 5])')
    s.exec("val C1 = class {o} end")
    s.exec("val C2 = class {o} end")
    s.exec("val Sel = class {} includes C1, C2 "
           "as fn p => [Name = (p.1).Name] "
           "where fn f => query(fn p => (p.1).N > 10, f) end")
    assert s.eval_py(f"c-query({NAMES}, Sel)") == []


def test_chained_inclusion(s):
    s.exec('val o = IDView([Name = "x", N = 1])')
    s.exec("val A = class {o} end")
    s.exec("val B = class {} includes A as fn x => [Name = x.Name, M = 2] "
           "where fn o => true end")
    s.exec("val C = class {} includes B as fn x => [Name = x.Name, K = 3] "
           "where fn o => true end")
    out = s.eval_py(f"c-query({EXTENT}, C)")
    assert out == [{"Name": "x", "K": 3}]


def test_included_objects_keep_identity(s):
    s.exec('val o = IDView([Name = "x"])')
    s.exec("val A = class {o} end")
    s.exec("val B = class {} includes A as fn x => [Name = x.Name] "
           "where fn o => true end")
    assert s.eval_py("c-query(fn S => exists(fn m => objeq(m, o), S), B)") \
        is True


def test_class_creating_function(s):
    # classes are first-class: a function that builds classes
    s.exec("val mk = fn S => class S end")
    s.exec('val C = mk {IDView([Name = "z"])}')
    assert s.eval_py(f"c-query({NAMES}, C)") == ["z"]


def test_class_query_arbitrary_aggregation(s):
    s.exec("val C = class {IDView([Name = \"a\", N = 1]), "
           "IDView([Name = \"b\", N = 2])} end")
    total = s.eval_py(
        "c-query(fn S => hom(S, fn o => query(fn v => v.N, o), "
        "fn a => fn b => a + b, 0), C)")
    assert total == 3


def test_update_through_included_view(s):
    # mutability transferred through an include clause's view
    s.exec('val o = IDView([Name = "x", Pay := 10])')
    s.exec("val A = class {o} end")
    s.exec("val B = class {} includes A "
           "as fn x => [Name = x.Name, Pay := extract(x, Pay)] "
           "where fn o => true end")
    s.eval("c-query(fn S => map(fn m => "
           "query(fn v => update(v, Pay, 99), m), S), B)")
    assert s.eval_py("query(fn v => v.Pay, o)") == 99


def test_insert_then_delete_roundtrip(s):
    s.exec("val C = class {} end")
    s.exec('val o = IDView([Name = "t"])')
    s.eval("insert(o, C)")
    s.eval("delete(o, C)")
    assert s.eval_py(f"c-query({NAMES}, C)") == []

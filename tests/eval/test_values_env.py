"""Runtime environments and record-value invariants."""

import pytest

from repro.errors import EvalError
from repro.eval.store import Location
from repro.eval.values import Env, VInt, VRecord, VSet


def test_env_lookup_walks_parents():
    base = Env({"a": VInt(1)})
    child = base.bind("b", VInt(2))
    assert child.lookup("a").value == 1
    assert child.lookup("b").value == 2


def test_env_shadowing():
    base = Env({"x": VInt(1)})
    child = base.bind("x", VInt(2))
    assert child.lookup("x").value == 2
    assert base.lookup("x").value == 1


def test_env_unbound_raises():
    with pytest.raises(EvalError, match="unbound"):
        Env({}).lookup("ghost")


def test_env_backpatch_slot_fails_loudly():
    # a fix frame whose slot is still None must not fall through to an
    # outer binding of the same name
    outer = Env({"f": VInt(99)})
    inner = outer.child({"f": None})
    with pytest.raises(EvalError, match="before it is defined"):
        inner.lookup("f")


def test_env_child_frames_do_not_copy():
    base = Env({"a": VInt(1)})
    child = base.child({"b": VInt(2)})
    base.frame["late"] = VInt(3)
    assert child.lookup("late").value == 3  # shared base frame


def test_record_read_through_location():
    loc = Location(VInt(5))
    rec = VRecord({"m": loc, "i": VInt(1)}, frozenset({"m"}))
    assert rec.read("m").value == 5
    assert rec.read("i").value == 1


def test_record_write_requires_mutable():
    rec = VRecord({"i": VInt(1)}, frozenset())
    with pytest.raises(EvalError, match="immutable"):
        rec.write("i", VInt(2))


def test_record_location_of_requires_mutable():
    rec = VRecord({"i": VInt(1)}, frozenset())
    with pytest.raises(EvalError, match="not mutable"):
        rec.location_of("i")


def test_record_missing_field():
    rec = VRecord({"i": VInt(1)}, frozenset())
    with pytest.raises(EvalError, match="no field"):
        rec.read("zzz")


def test_record_oids_unique():
    r1 = VRecord({"a": VInt(1)}, frozenset())
    r2 = VRecord({"a": VInt(1)}, frozenset())
    assert r1.oid != r2.oid


def test_vset_len_and_order():
    s = VSet([VInt(3), VInt(1), VInt(3), VInt(2)])
    assert len(s) == 3
    assert [e.value for e in s.elems] == [3, 1, 2]

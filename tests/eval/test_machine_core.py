"""Operational semantics of the core: records, identity, L-values, sets."""

import pytest

from repro import Session
from repro.errors import EvalError


@pytest.fixture()
def s():
    return Session()


def test_literals(s):
    assert s.eval_py("42") == 42
    assert s.eval_py('"x"') == "x"
    assert s.eval_py("true") is True
    assert s.eval_py("()") is None


def test_arithmetic(s):
    assert s.eval_py("2 + 3 * 4") == 14
    assert s.eval_py("10 - 3") == 7
    assert s.eval_py("7 div 2") == 3
    assert s.eval_py("7 mod 2") == 1
    assert s.eval_py('"ab" ^ "cd"') == "abcd"


def test_division_by_zero_is_runtime_error(s):
    with pytest.raises(EvalError):
        s.eval("1 div 0")
    with pytest.raises(EvalError):
        s.eval("1 mod 0")


def test_comparisons(s):
    assert s.eval_py("1 < 2") is True
    assert s.eval_py("2 <= 2") is True
    assert s.eval_py("3 > 4") is False
    assert s.eval_py("3 >= 4") is False


def test_lambda_application(s):
    assert s.eval_py("(fn x => x + 1) 41") == 42


def test_closures_capture_environment(s):
    assert s.eval_py(
        "let a = 10 in let f = fn x => x + a in let a = 0 in f 1 end end "
        "end") == 11


def test_let_shadowing(s):
    assert s.eval_py("let x = 1 in let x = 2 in x end end") == 2


def test_fix_factorial(s):
    s.exec("fun fact n = if n < 1 then 1 else n * (fact (n - 1))")
    assert s.eval_py("fact 6") == 720


def test_mutual_recursion(s):
    s.exec("fun even n = if n < 1 then true else odd (n - 1) "
           "and odd n = if n < 1 then false else even (n - 1)")
    assert s.eval_py("even 10") is True
    assert s.eval_py("odd 7") is True


def test_record_creation_and_read(s):
    assert s.eval_py("[A = 1, B := 2]") == {"A": 1, "B": 2}


def test_record_update(s):
    s.exec("val r = [A := 1]")
    s.eval("update(r, A, 5)")
    assert s.eval_py("r.A") == 5


def test_records_have_identity(s):
    # two evaluations of the same literal are different records
    assert s.eval_py("eq([A = 1], [A = 1])") is False
    assert s.eval_py("let r = [A = 1] in eq(r, r) end") is True


def test_eq_on_base_values_is_structural(s):
    assert s.eval_py("eq(1 + 1, 2)") is True
    assert s.eval_py('eq("a", "a")') is True


def test_lvalue_sharing_joe_doe_john(s):
    # the Section 2 example verbatim
    s.exec('val joe = [Name = "Doe", Salary := 3000]')
    s.exec('val Doe = [Name = "Doe", Income := extract(joe, Salary)]')
    s.exec('val john = [Name = "John", Salary = extract(joe, Salary)]')
    s.eval("update(joe, Salary, 4000)")
    assert s.eval_py("Doe.Income") == 4000
    assert s.eval_py("john.Salary") == 4000
    s.eval("update(Doe, Income, 1234)")
    assert s.eval_py("joe.Salary") == 1234


def test_update_on_runtime_immutable_field_fails(s):
    # bypass the type system deliberately
    from repro.core import terms as T
    from repro.core.types import INT
    term = T.Update(T.RecordExpr([T.RecordField("A", T.Const(1, INT),
                                                mutable=False)]),
                    "A", T.Const(2, INT))
    with pytest.raises(EvalError):
        s.eval_term(term, typecheck=False)


def test_set_literal_and_dedup(s):
    assert s.eval_py("{1, 2, 2, 1}") == [1, 2]


def test_set_dedup_keeps_first(s):
    s.exec("val r1 = [A = 1]")
    s.exec("val r2 = [A = 1]")
    assert s.eval_py("size({r1, r2})") == 2  # identity-distinct records
    assert s.eval_py("size({r1, r1})") == 1


def test_union_left_bias(s):
    assert s.eval_py("union({1, 2}, {2, 3})") == [1, 2, 3]


def test_remove(s):
    assert s.eval_py("remove({1, 2, 3}, {2})") == [1, 3]


def test_member(s):
    assert s.eval_py("member(2, {1, 2})") is True
    assert s.eval_py("member(9, {1, 2})") is False


def test_hom_fold_order(s):
    # hom({e1..en}, f, op, z) = op(f e1, op(f e2, ... op(f en, z)))
    assert s.eval_py(
        'hom({"a", "b", "c"}, fn x => x, fn a => fn b => a ^ b, "z")') \
        == "abcz"


def test_hom_empty_set(s):
    assert s.eval_py("hom({}, fn x => x, fn a => fn b => a + b, 100)") == 100


def test_union_passed_first_class_to_hom(s):
    assert s.eval_py("hom({{1}, {2}, {1}}, fn s => s, union, {})") == [1, 2]


def test_prelude_map_filter(s):
    assert s.eval_py("map(fn x => x * 2, {1, 2, 3})") == [2, 4, 6]
    assert s.eval_py("filter(fn x => x > 1, {1, 2, 3})") == [2, 3]


def test_prelude_exists_all(s):
    assert s.eval_py("exists(fn x => x > 2, {1, 2, 3})") is True
    assert s.eval_py("all(fn x => x > 0, {1, 2, 3})") is True
    assert s.eval_py("all(fn x => x > 1, {1, 2, 3})") is False


def test_prod_cartesian(s):
    out = s.eval_py("map(fn p => (p.1) * 10 + p.2, prod({1, 2}, {3, 4}))")
    assert out == [13, 14, 23, 24]


def test_prod_with_empty_factor(s):
    assert s.eval_py("prod({1, 2}, {})") == []


def test_sets_compare_structurally(s):
    assert s.eval_py("eq({1, 2}, {2, 1})") is True
    assert s.eval_py("eq({1}, {1, 2})") is False


def test_nested_sets(s):
    assert s.eval_py("size({{1}, {1}, {2}})") == 2


def test_this_year_configurable():
    s = Session(this_year=2000)
    assert s.eval_py("This_year()") == 2000


def test_fix_of_non_lambda_fails_at_runtime(s):
    from repro.core import terms as T
    term = T.Fix("x", T.Var("x"))
    with pytest.raises(EvalError):
        s.eval_term(term, typecheck=False)


def test_metrics_count_records(s):
    s.metrics.reset()
    s.eval("[A = 1]")
    assert s.metrics.records_created == 1

"""Runtime error paths of the machine (reached by bypassing typechecking,
or by genuine runtime faults like division by zero)."""

import pytest

from repro import Session
from repro.core import terms as T
from repro.core.types import INT, STRING
from repro.errors import EvalError


@pytest.fixture()
def s():
    return Session()


def run_untyped(s, term):
    return s.eval_term(term, typecheck=False)


def test_apply_non_function(s):
    with pytest.raises(EvalError, match="non-function"):
        run_untyped(s, T.App(T.Const(1, INT), T.Const(2, INT)))


def test_dot_on_non_record(s):
    with pytest.raises(EvalError):
        run_untyped(s, T.Dot(T.Const(1, INT), "a"))


def test_missing_field_read(s):
    rec = T.RecordExpr([T.RecordField("a", T.Const(1, INT), False)])
    with pytest.raises(EvalError, match="no field"):
        run_untyped(s, T.Dot(rec, "z"))


def test_update_missing_field(s):
    rec = T.RecordExpr([T.RecordField("a", T.Const(1, INT), True)])
    with pytest.raises(EvalError):
        run_untyped(s, T.Update(rec, "z", T.Const(1, INT)))


def test_extract_of_immutable_field_at_runtime(s):
    rec = T.RecordExpr([T.RecordField("a", T.Const(1, INT), False)])
    outer = T.RecordExpr([T.RecordField("b", T.Extract(rec, "a"), True)])
    with pytest.raises(EvalError, match="not mutable"):
        run_untyped(s, outer)


def test_bare_extract(s):
    rec = T.RecordExpr([T.RecordField("a", T.Const(1, INT), True)])
    with pytest.raises(EvalError):
        run_untyped(s, T.Extract(rec, "a"))


def test_idview_of_non_record(s):
    with pytest.raises(EvalError, match="record"):
        run_untyped(s, T.IDView(T.Const(1, INT)))


def test_query_of_non_object(s):
    with pytest.raises(EvalError, match="object"):
        run_untyped(s, T.Query(T.Lam("x", T.Var("x")), T.Const(1, INT)))


def test_cquery_of_non_class(s):
    with pytest.raises(EvalError, match="class"):
        run_untyped(s, T.CQuery(T.Lam("x", T.Var("x")), T.Const(1, INT)))


def test_if_non_bool_condition(s):
    with pytest.raises(EvalError, match="bool"):
        run_untyped(s, T.If(T.Const(1, INT), T.Const(1, INT),
                            T.Const(2, INT)))


def test_builtin_type_guards(s):
    cases = [
        T.App(T.App(T.Var("+"), T.Const("a", STRING)), T.Const(1, INT)),
        T.App(T.App(T.Var("^"), T.Const(1, INT)), T.Const(2, INT)),
        T.App(T.Var("not"), T.Const(1, INT)),
        T.App(T.Var("size"), T.Const(1, INT)),
        T.App(T.App(T.Var("union"), T.Const(1, INT)), T.SetExpr([])),
    ]
    for term in cases:
        with pytest.raises(EvalError):
            run_untyped(s, term)


def test_include_predicate_must_return_bool(s):
    from repro.core.terms import ClassExpr, IncludeClause
    base = s.parse("class {IDView([A = 1])} end")
    bad = ClassExpr(T.SetExpr([]), [IncludeClause(
        [base], T.Lam("x", T.Var("x")), T.Lam("o", T.Const(1, INT)))])
    with pytest.raises(EvalError, match="bool"):
        run_untyped(s, T.CQuery(T.Lam("x", T.Var("x")), bad))


def test_unbound_variable_at_runtime(s):
    with pytest.raises(EvalError, match="unbound"):
        run_untyped(s, T.Var("ghost"))


def test_recursive_value_used_too_early(s):
    # fix x. (x 1) forces x during evaluation of the fix body
    with pytest.raises(EvalError, match="before it is defined"):
        run_untyped(s, T.Fix("x", T.App(T.Var("x"), T.Const(1, INT))))


def test_well_typed_programs_avoid_all_of_the_above(s):
    """The meta-point (Prop 1): none of these faults is reachable from a
    program that passed inference — spot-checked on a composite program."""
    out = s.eval_py("""
        let r = [a := 1] in
        let o = IDView(r) in
        let C = class {o} end in
        c-query(fn S => hom(S, fn x => query(fn v => v.a, x),
                            fn p => fn q => p + q, 0), C)
        end end end
    """)
    assert out == 1

"""The two Section 3.1 semantics for sets of objects.

The paper chooses the left-biased collapse ("S1 ∪ S2 will choose e1 and
discard e2") but notes "the other alternative is equally possible": require
that objeq elements carry the *same viewing function*.  Both are
implemented; ``Session(object_union="same-view")`` selects the alternative.
"""

import pytest

from repro import Session
from repro.errors import EvalError

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


def _two_views(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v1 = (o as fn x => [A = x.A + 1])")
    s.exec("val v2 = (o as fn x => [A = x.A + 2])")


def test_default_chooses_left():
    s = Session()
    _two_views(s)
    out = s.eval_py("map(fn x => query(fn r => r.A, x), union({v1}, {v2}))")
    assert out == [2]


def test_same_view_mode_rejects_conflicting_views():
    s = Session(object_union="same-view")
    _two_views(s)
    with pytest.raises(EvalError, match="same raw object"):
        s.eval("union({v1}, {v2})")


def test_same_view_mode_accepts_identical_view():
    s = Session(object_union="same-view")
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [A = x.A])")
    assert s.eval_py("size(union({v}, {v}))") == 1


def test_same_view_mode_set_literal():
    s = Session(object_union="same-view")
    _two_views(s)
    with pytest.raises(EvalError):
        s.eval("{v1, v2}")


def test_same_view_mode_plain_sets_unaffected():
    s = Session(object_union="same-view")
    assert s.eval_py("union({1, 2}, {2, 3})") == [1, 2, 3]


def test_same_view_mode_flags_double_classification():
    """Under the alternative semantics the FemaleMember example errors
    when one person enters through two include clauses — the flexibility
    the paper's chosen semantics buys."""
    s = Session(object_union="same-view")
    s.exec('val mia = IDView([Name = "Mia", Sex = "female"])')
    s.exec("val Staff = class {mia} end")
    s.exec("val Student = class {mia} end")
    s.exec('''
        val FM = class {}
          includes Staff as fn x => [Name = x.Name, Cat = "staff"]
            where fn o => query(fn v => v.Sex = "female", o)
          includes Student as fn x => [Name = x.Name, Cat = "student"]
            where fn o => query(fn v => v.Sex = "female", o)
        end
    ''')
    with pytest.raises(EvalError):
        s.eval("c-query(fn S => size(S), FM)")


def test_choose_mode_allows_double_classification():
    s = Session()  # default
    s.exec('val mia = IDView([Name = "Mia", Sex = "female"])')
    s.exec("val Staff = class {mia} end")
    s.exec("val Student = class {mia} end")
    s.exec('''
        val FM = class {}
          includes Staff as fn x => [Name = x.Name, Cat = "staff"]
            where fn o => query(fn v => v.Sex = "female", o)
          includes Student as fn x => [Name = x.Name, Cat = "student"]
            where fn o => query(fn v => v.Sex = "female", o)
        end
    ''')
    rows = s.eval_py("c-query(fn S => map(fn o => query(fn v => v, o), S), "
                     "FM)")
    assert rows == [{"Name": "Mia", "Cat": "staff"}]


def test_machine_rejects_unknown_mode():
    with pytest.raises(ValueError):
        Session(object_union="banana")


def test_insert_conflict_under_same_view():
    s = Session(object_union="same-view")
    s.exec('val o = IDView([Name = "n"])')
    s.exec("val C = class {(o as fn x => [Name = x.Name])} end")
    with pytest.raises(EvalError):
        s.eval('insert((o as fn x => [Name = "alias"]), C)')

"""The store: locations, sharing, allocation accounting, journaling."""

import pytest

from repro import Session
from repro.eval.store import Location, Store


def test_location_holds_value():
    loc = Location(42)
    assert loc.value == 42
    loc.value = 7
    assert loc.value == 7


def test_location_ids_unique():
    a, b = Location(1), Location(1)
    assert a.id != b.id


def test_store_counts_allocations():
    store = Store()
    store.alloc(1)
    store.alloc(2)
    assert store.allocations == 2


def test_mutable_fields_allocate_one_location_each():
    s = Session()
    before = s.machine.store.allocations
    s.eval("[a := 1, b := 2, c = 3]")
    assert s.machine.store.allocations - before == 2  # c is immutable


def test_extract_shares_not_allocates():
    s = Session()
    s.exec("val r = [a := 1]")
    before = s.machine.store.allocations
    s.exec("val r2 = [b := extract(r, a)]")
    assert s.machine.store.allocations == before  # shared, no new location


def test_shared_location_identity():
    s = Session()
    s.exec("val r = [a := 1]")
    s.exec("val r2 = [b := extract(r, a)]")
    r = s.runtime_env.lookup("r")
    r2 = s.runtime_env.lookup("r2")
    assert r.cells["a"] is r2.cells["b"]


def test_immutable_field_sharing_is_read_only():
    s = Session()
    s.exec("val r = [a := 1]")
    s.exec("val ro = [b = extract(r, a)]")
    ro = s.runtime_env.lookup("ro")
    assert "b" not in ro.mutable_labels
    # reads go through the shared location
    s.eval("update(r, a, 9)")
    assert s.eval_py("ro.b") == 9


# -- per-store location ids (regression: was a module-global counter) ------

def test_location_ids_are_per_store():
    a, b = Store(), Store()
    assert a.alloc(1).id == b.alloc(2).id == 1
    assert a.alloc(3).id == b.alloc(4).id == 2


def test_sessions_allocate_deterministic_ids():
    def ids(session):
        session.exec("val r = [a := 10, b := 20]")
        r = session.runtime_env.lookup("r")
        return sorted(cell.id for cell in r.cells.values())

    assert ids(Session()) == ids(Session())


# -- the undo journal ------------------------------------------------------

def test_rollback_restores_written_value():
    store = Store()
    loc = store.alloc(1)
    sp = store.savepoint()
    store.write(loc, 2)
    store.write(loc, 3)
    store.rollback(sp)
    assert loc.value == 1
    assert not store.journaling


def test_rollback_rewinds_allocations_and_ids():
    store = Store()
    store.alloc(0)
    sp = store.savepoint()
    store.alloc(1)
    store.alloc(2)
    store.rollback(sp)
    assert store.allocations == 1
    assert store.alloc(3).id == 2  # same id a non-rolled-back run gets


def test_commit_keeps_effects():
    store = Store()
    loc = store.alloc(1)
    sp = store.savepoint()
    store.write(loc, 2)
    store.commit(sp)
    assert loc.value == 2
    assert not store.journaling


def test_nested_savepoints_inner_commit_outer_rollback():
    store = Store()
    loc = store.alloc(1)
    outer = store.savepoint()
    inner = store.savepoint()
    store.write(loc, 2)
    store.commit(inner)
    store.write(loc, 3)
    store.rollback(outer)
    assert loc.value == 1


def test_nested_savepoints_inner_rollback_only():
    store = Store()
    loc = store.alloc(1)
    outer = store.savepoint()
    store.write(loc, 2)
    inner = store.savepoint()
    store.write(loc, 3)
    store.rollback(inner)
    assert loc.value == 2
    store.commit(outer)
    assert loc.value == 2


def test_note_undo_runs_on_rollback_in_reverse_order():
    store = Store()
    ran = []
    sp = store.savepoint()
    store.note_undo(lambda: ran.append("first"))
    store.note_undo(lambda: ran.append("second"))
    store.rollback(sp)
    assert ran == ["second", "first"]


def test_note_undo_outside_savepoint_is_noop():
    store = Store()
    store.note_undo(lambda: (_ for _ in ()).throw(AssertionError))
    # no savepoint: nothing recorded, nothing to undo


def test_out_of_order_close_is_rejected():
    store = Store()
    outer = store.savepoint()
    store.savepoint()
    with pytest.raises(RuntimeError):
        store.commit(outer)


def test_rollback_without_savepoint_is_rejected():
    store = Store()
    with pytest.raises(RuntimeError):
        store.rollback(object())


def test_writes_outside_savepoint_are_direct():
    store = Store()
    loc = store.alloc(1)
    store.write(loc, 5)
    assert loc.value == 5
    assert not store.journaling

"""The store: locations, sharing, allocation accounting."""

from repro import Session
from repro.eval.store import Location, Store


def test_location_holds_value():
    loc = Location(42)
    assert loc.value == 42
    loc.value = 7
    assert loc.value == 7


def test_location_ids_unique():
    a, b = Location(1), Location(1)
    assert a.id != b.id


def test_store_counts_allocations():
    store = Store()
    store.alloc(1)
    store.alloc(2)
    assert store.allocations == 2


def test_mutable_fields_allocate_one_location_each():
    s = Session()
    before = s.machine.store.allocations
    s.eval("[a := 1, b := 2, c = 3]")
    assert s.machine.store.allocations - before == 2  # c is immutable


def test_extract_shares_not_allocates():
    s = Session()
    s.exec("val r = [a := 1]")
    before = s.machine.store.allocations
    s.exec("val r2 = [b := extract(r, a)]")
    assert s.machine.store.allocations == before  # shared, no new location


def test_shared_location_identity():
    s = Session()
    s.exec("val r = [a := 1]")
    s.exec("val r2 = [b := extract(r, a)]")
    r = s.runtime_env.lookup("r")
    r2 = s.runtime_env.lookup("r2")
    assert r.cells["a"] is r2.cells["b"]


def test_immutable_field_sharing_is_read_only():
    s = Session()
    s.exec("val r = [a := 1]")
    s.exec("val ro = [b = extract(r, a)]")
    ro = s.runtime_env.lookup("ro")
    assert "b" not in ro.mutable_labels
    # reads go through the shared location
    s.eval("update(r, a, 9)")
    assert s.eval_py("ro.b") == 9

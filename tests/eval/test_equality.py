"""The equality taxonomy: eq vs objeq vs set-formation keys (Section 3.1)."""

import pytest

from repro import Session
from repro.errors import EvalError
from repro.eval.equality import eq_values, objeq_values, value_key
from repro.eval.values import VInt, VObject, VRecord, VSet, VString


@pytest.fixture()
def s():
    return Session()


def test_eq_records_is_identity(s):
    assert s.eval_py("eq([A = 1], [A = 1])") is False


def test_eq_functions_is_identity(s):
    assert s.eval_py("let f = fn x => x in eq(f, f) end") is True
    assert s.eval_py("eq(fn x => x, fn x => x)") is False


def test_objeq_same_raw_different_views(s):
    # objeq is typable across different view types (fuse hides them in a
    # product); the views here intentionally differ.
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [B = x.A])")
    assert s.eval_py("objeq(o, v)") is True


def test_eq_on_same_type_views_is_object_identity(s):
    # eq requires both sides at one type; two same-typed views of one raw
    # object are objeq but not eq.
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [A = x.A + 1])")
    assert s.eval_py("eq(o, v)") is False
    assert s.eval_py("objeq(o, v)") is True


def test_eq_across_view_types_is_ill_typed(s):
    # under the pair encoding the two objects have different types, so eq
    # on them is statically rejected (objeq via fuse is the right tool).
    from repro.errors import UnificationError
    import pytest as _pytest
    s.exec("val o = IDView([A = 1])")
    s.exec("val w = (o as fn x => [B = x.A])")
    with _pytest.raises(UnificationError):
        s.eval("eq(o, w)")


def test_objeq_different_raws(s):
    s.exec("val o1 = IDView([A = 1])")
    s.exec("val o2 = IDView([A = 1])")
    assert s.eval_py("objeq(o1, o2)") is False


def test_eq_same_object_value(s):
    s.exec("val o = IDView([A = 1])")
    assert s.eval_py("eq(o, o)") is True


def test_object_sets_collapse_by_raw(s):
    # Section 3.1: sets of objects are formed under objeq.
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [A = x.A + 1])")
    assert s.eval_py("size({o, v})") == 1


def test_object_set_union_prefers_left(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [A = x.A + 10])")
    # union picks the element of the left operand
    out = s.eval_py("map(fn x => query(fn r => r, x), union({v}, {o}))")
    assert out == [{"A": 11}]
    out2 = s.eval_py("map(fn x => query(fn r => r, x), union({o}, {v}))")
    assert out2 == [{"A": 1}]


def test_member_on_object_sets_uses_objeq(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [A = x.A])")
    assert s.eval_py("member(v, {o})") is True


def test_remove_on_object_sets_uses_objeq(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val p = IDView([A = 2])")
    s.exec("val v = (o as fn x => [A = x.A])")
    out = s.eval_py("size(remove({o, p}, {v}))")
    assert out == 1


def test_value_key_base_values():
    assert value_key(VInt(3)) == value_key(VInt(3))
    assert value_key(VString("a")) != value_key(VInt(3))


def test_value_key_object_is_raw_identity():
    raw = VRecord({"A": VInt(1)}, frozenset())
    o1 = VObject(raw, None)
    o2 = VObject(raw, None)
    assert value_key(o1) == value_key(o2)
    assert eq_values(o1, o2) is False  # object-value identity differs
    assert objeq_values(o1, o2) is True


def test_value_key_set_is_frozen_keys():
    s1 = VSet([VInt(1), VInt(2)])
    s2 = VSet([VInt(2), VInt(1)])
    assert value_key(s1) == value_key(s2)


def test_objeq_values_requires_objects():
    with pytest.raises(EvalError):
        objeq_values(VInt(1), VInt(2))


def test_fuse_nonempty_iff_objeq(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [B = x.A])")
    s.exec("val w = IDView([A = 2])")
    assert s.eval_py("size(fuse(o, v))") == 1
    assert s.eval_py("size(fuse(o, w))") == 0

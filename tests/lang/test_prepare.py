"""The prepared-query API (parse/typecheck once, run many)."""

import pytest

from repro import Session
from repro.errors import TypeInferenceError, UnificationError


@pytest.fixture()
def s():
    return Session()


def test_prepare_runs_repeatedly(s):
    s.exec("val r = [n := 0]")
    bump = s.prepare("update(r, n, (r.n) + 1)")
    read = s.prepare("r.n")
    for _ in range(5):
        bump()
    assert read.run_py() == 5


def test_prepare_reports_type(s):
    q = s.prepare("fn x => x.a")
    assert q.type_str() == "forall t1::U. forall t2::[[a = t1]]. t2 -> t1"


def test_prepare_rejects_ill_typed(s):
    with pytest.raises(UnificationError):
        s.prepare("1 + true")


def test_prepare_requires_bindings_at_prepare_time(s):
    with pytest.raises(TypeInferenceError):
        s.prepare("missing + 1")


def test_prepared_query_sees_later_mutations(s):
    s.exec("val C = class {} end")
    size = s.prepare("c-query(fn S => size(S), C)")
    assert size.run_py() == 0
    s.eval("insert(IDView([N = 1]), C)")
    assert size.run_py() == 1


def test_prepare_respects_pure_views():
    from repro.objects.effects import ImpureViewError
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    with pytest.raises(ImpureViewError):
        s.prepare("(o as fn x => let u = update(x, A, 0) in x end)")


def test_prepare_skips_reinference(s, monkeypatch):
    q = s.prepare("1 + 1")
    import repro.lang.api as api
    monkeypatch.setattr(api, "infer_scheme",
                        lambda *a, **k: pytest.fail("re-inferred"))
    assert q.run_py() == 2

"""Conversion of runtime values to Python data (repro.lang.pyconv)."""

import pytest

from repro import Session
from repro.lang.pyconv import record_to_python, value_to_python


@pytest.fixture()
def s():
    return Session()


def conv(s, src):
    return value_to_python(s.eval(src), s.machine)


def test_base_values(s):
    assert conv(s, "1") == 1
    assert conv(s, '"x"') == "x"
    assert conv(s, "true") is True
    assert conv(s, "()") is None


def test_record_with_mutable_fields(s):
    assert conv(s, "[a = 1, b := 2]") == {"a": 1, "b": 2}


def test_nested_records_and_sets(s):
    assert conv(s, "[a = {1, 2}, b = [c = true]]") == \
        {"a": [1, 2], "b": {"c": True}}


def test_set_preserves_order(s):
    assert conv(s, "{3, 1, 2}") == [3, 1, 2]


def test_object_converts_to_materialized_view_with_oid(s):
    s.exec("val o = IDView([a = 1])")
    out = conv(s, "(o as fn x => [b = x.a + 1])")
    assert out["b"] == 2
    raw = s.runtime_env.lookup("o").raw
    assert out["__oid__"] == raw.oid


def test_two_views_same_oid(s):
    s.exec("val o = IDView([a = 1])")
    v1 = conv(s, "(o as fn x => [b = x.a])")
    v2 = conv(s, "(o as fn x => [c = x.a])")
    assert v1["__oid__"] == v2["__oid__"]


def test_class_converts_to_extent(s):
    out = conv(s, "class {IDView([a = 1])} end")
    assert out["extent"][0]["a"] == 1


def test_functions_convert_to_tag(s):
    assert conv(s, "fn x => x").startswith("<function")
    assert conv(s, "union").startswith("<function")


def test_record_to_python_reads_through_locations(s):
    s.exec("val r = [a := 1]")
    rec = s.runtime_env.lookup("r")
    s.eval("update(r, a, 5)")
    assert record_to_python(rec, s.machine) == {"a": 5}

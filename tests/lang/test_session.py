"""The Session API: exec/bind/typeof/it/metrics/translation entry points."""

import pytest

from repro import Session
from repro.errors import ParseError, TypeInferenceError


def test_bind_and_eval():
    s = Session()
    s.bind("x", "40 + 2")
    assert s.eval_py("x") == 42


def test_bind_returns_scheme():
    s = Session()
    scheme = s.bind("f", "fn x => x")
    from repro.syntax.pretty import pretty_scheme
    assert pretty_scheme(scheme) == "forall t1::U. t1 -> t1"


def test_exec_returns_last_expression_value():
    s = Session()
    out = s.exec("val x = 1; x + 1")
    from repro.eval.values import VInt
    assert isinstance(out, VInt) and out.value == 2


def test_exec_binds_it():
    s = Session()
    s.exec("21 * 2")
    assert s.eval_py("it") == 42


def test_exec_without_expression_returns_none():
    s = Session()
    assert s.exec("val x = 1") is None


def test_typeof_does_not_evaluate():
    s = Session()
    s.exec("val r = [A := 1]")
    s.typeof("update(r, A, 99)")
    assert s.eval_py("r.A") == 1


def test_typecheck_failure_prevents_evaluation():
    s = Session()
    s.exec("val r = [A := 1]")
    with pytest.raises(Exception):
        s.eval('update(r, A, "wrong type")')
    assert s.eval_py("r.A") == 1


def test_ill_typed_bind_leaves_env_unchanged():
    s = Session()
    with pytest.raises(Exception):
        s.bind("bad", "1 + true")
    with pytest.raises(TypeInferenceError):
        s.typeof("bad")


def test_parse_error_has_position():
    s = Session()
    with pytest.raises(ParseError) as exc:
        s.eval("let x = in 3 end")
    assert exc.value.line is not None


def test_prelude_can_be_disabled():
    s = Session(load_prelude=False)
    with pytest.raises(TypeInferenceError):
        s.typeof("map")


def test_fun_decl_polymorphic_across_uses():
    s = Session()
    s.exec("fun ident x = x")
    assert s.eval_py("(ident 1, ident true)") == {"1": 1, "2": True}


def test_mutual_fun_decl():
    s = Session()
    s.exec("fun ping n = if n < 1 then \"ping\" else pong (n - 1) "
           "and pong n = if n < 1 then \"pong\" else ping (n - 1)")
    assert s.eval_py("ping 3") == "pong"
    assert s.eval_py("ping 4") == "ping"


def test_rebinding_shadows():
    s = Session()
    s.bind("x", "1")
    s.bind("x", "2")
    assert s.eval_py("x") == 2


def test_metrics_accumulate_and_reset():
    s = Session()
    s.metrics.reset()
    s.eval("[A = 1]")
    assert s.metrics.records_created == 1
    s.metrics.reset()
    assert s.metrics.records_created == 0


def test_translate_full_pipeline():
    s = Session()
    term = s.translate_full(
        "c-query(fn S => size(S), class {IDView([A = 1])} end)")
    from repro.core import terms as T

    def clean(t):
        assert not isinstance(
            t, (T.IDView, T.AsView, T.Query, T.Fuse, T.RelObj, T.ClassExpr,
                T.CQuery, T.Insert, T.Delete, T.LetClasses))
        for sub in T.iter_subterms(t):
            clean(sub)

    clean(term)


def test_show_pretty_prints():
    s = Session()
    assert s.show("[A = 1, B := true]") == "[A = 1, B := true]"
    assert s.show("{1, 2}") == "{1, 2}"


def test_separate_sessions_are_isolated():
    s1, s2 = Session(), Session()
    s1.bind("x", "1")
    with pytest.raises(TypeInferenceError):
        s2.typeof("x")

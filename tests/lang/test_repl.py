"""The REPL line processor."""

import pytest

from repro import Session
from repro.lang.repl import run_line


@pytest.fixture()
def s():
    return Session()


def test_expression_prints_value_and_type(s):
    out = run_line(s, "1 + 1")
    assert out == "2 : int"


def test_val_binding_prints_ok(s):
    assert run_line(s, "val x = 5") == "ok"
    assert run_line(s, "x") == "5 : int"


def test_type_command(s):
    out = run_line(s, ":type fn x => x.A")
    assert out == "forall t1::U. forall t2::[[A = t1]]. t2 -> t1"


def test_translate_command(s):
    out = run_line(s, ":translate IDView([A = 1])")
    assert "IDView" not in out
    assert "[1 = [A = 1]" in out


def test_metrics_command(s):
    assert "records_created" in run_line(s, ":metrics")


def test_explain_command(s):
    run_line(s, "val o = IDView([A = 1])")
    out = run_line(s, ":explain query(fn x => x.A, o)")
    assert "materialize" in out
    assert "=> 1" in out


def test_explain_without_laziness(s):
    out = run_line(s, ":explain 1 + 1")
    assert "no lazy evaluation" in out


def test_help(s):
    assert ":type" in run_line(s, ":help")


def test_quit_raises_eof(s):
    with pytest.raises(EOFError):
        run_line(s, ":quit")


def test_blank_line_quiet(s):
    assert run_line(s, "   ") is None


def test_record_value_display(s):
    out = run_line(s, '[Name = "n", Pay := 3]')
    assert out.startswith('[Name = "n", Pay := 3] : ')

"""The explain facility: tracing lazy views and extent computations."""

import pytest

from repro import Session
from repro.lang.explain import ExplainNode, explain


@pytest.fixture()
def s():
    return Session()


def test_materializations_traced(s):
    s.exec("val o = IDView([A = 1])")
    report = explain(s, "query(fn x => x.A, o)")
    assert report.result == 1
    assert report.materializations() == 1
    assert "materialize" in report.render()


def test_no_trace_without_explain(s):
    s.exec("val o = IDView([A = 1])")
    s.eval("query(fn x => x.A, o)")
    assert s.machine.tracer is None


def test_extent_tree_nesting(s):
    s.exec('val o = IDView([Name = "n"])')
    s.exec("val A = class {o} end")
    s.exec("val B = class {} includes A as fn x => [Name = x.Name] "
           "where fn i => true end")
    report = explain(s, "c-query(fn S => size(S), B)")
    assert report.result == 1
    # B's extent computation nests A's
    assert len(report.roots) == 1
    root = report.roots[0]
    assert root.kind == "extent"
    assert any(c.kind == "extent" for c in root.children)


def test_cycle_cuts_reported(s):
    s.exec('val seed = IDView([Name = "s"])')
    s.exec("val P = class {seed} includes Q as fn x => [Name = x.Name] "
           "where fn i => true end "
           "and Q = class {} includes P as fn x => [Name = x.Name] "
           "where fn i => true end")
    report = explain(s, "c-query(fn S => size(S), P)")
    assert report.cycle_cuts() == 1
    assert "already on the inclusion path" in report.render()


def test_counts_match_metrics(s):
    s.exec('val o = IDView([Name = "n", Sex = "f"])')
    s.exec("val A = class {o} end")
    s.exec("val B = class {} includes A as fn x => [Name = x.Name] "
           'where fn i => query(fn v => v.Sex = "f", i) end')
    s.metrics.reset()
    report = explain(s, "c-query(fn S => map(fn m => "
                        "query(fn v => v.Name, m), S), B)")
    assert report.extent_computations() == s.metrics.extent_computations \
        + 1  # the nested source extent is one _extent call, one tree node
    assert report.materializations() == s.metrics.view_materializations


def test_tracer_detached_after_error(s):
    with pytest.raises(Exception):
        explain(s, "1 + true")
    assert s.machine.tracer is None


def test_node_count_helper():
    tree = ExplainNode("extent", "x", [
        ExplainNode("materialize", "a"),
        ExplainNode("extent", "y", [ExplainNode("materialize", "b")])])
    assert tree.count() == 4
    assert tree.count("materialize") == 2
    assert tree.count("extent") == 2


def test_render_indents():
    tree = ExplainNode("extent", "outer", [ExplainNode("extent", "inner")])
    from repro.lang.explain import ExplainReport
    text = ExplainReport([tree], None).render()
    assert text == "extent outer\n  extent inner"


def test_result_conversion_does_not_pollute_trace(s):
    # explain returns a class value: converting it computes the extent,
    # but AFTER the tracer is detached
    s.exec("val C = class {IDView([A = 1])} end")
    report = explain(s, "C")
    assert report.extent_computations() == 0
    assert report.result["extent"][0]["A"] == 1

"""Position-annotated diagnostics across the pipeline."""

import pytest

from repro import Session
from repro.errors import (KindError, LexError, ParseError,
                          TypeInferenceError, UnificationError)


@pytest.fixture()
def s():
    return Session()


def test_lex_error_position(s):
    with pytest.raises(LexError) as exc:
        s.eval("1 +\n ?")
    assert exc.value.line == 2 and exc.value.column == 2


def test_parse_error_position(s):
    with pytest.raises(ParseError) as exc:
        s.eval("let x =\n in 1 end")
    assert exc.value.line == 2


def test_kind_error_carries_position(s):
    with pytest.raises(KindError) as exc:
        s.typeof("fn x =>\n  update([A = 1], A, 2)")
    assert "(line 2" in str(exc.value)


def test_unification_error_carries_position(s):
    with pytest.raises(UnificationError) as exc:
        s.typeof("let f = fn x => x + 1 in\nf true end")
    assert "(line" in str(exc.value)


def test_position_is_innermost(s):
    # the annotation comes from the node nearest the failure
    with pytest.raises(UnificationError) as exc:
        s.typeof('(1,\n 2,\n "three" + 4)')
    assert "(line 3" in str(exc.value)


def test_unbound_variable_message(s):
    with pytest.raises(TypeInferenceError) as exc:
        s.typeof("nope + 1")
    assert "unbound variable 'nope'" in str(exc.value)


def test_missing_field_message_names_field(s):
    with pytest.raises(KindError) as exc:
        s.typeof("[A = 1].B")
    assert "'B'" in str(exc.value)


def test_immutable_update_message(s):
    with pytest.raises(KindError) as exc:
        s.typeof("update([A = 1], A, 2)")
    assert "immutable" in str(exc.value)


def test_record_mismatch_lists_fields(s):
    with pytest.raises(UnificationError) as exc:
        s.typeof("if true then [A = 1] else [B = 1]")
    assert "'A'" in str(exc.value) and "'B'" in str(exc.value)


def test_recursive_class_violation_names_class(s):
    from repro.errors import RecursiveClassError
    with pytest.raises(RecursiveClassError) as exc:
        s.eval("let A = class {} includes B "
               "as fn x => [N = c-query(fn S => size(S), A)] "
               "where fn o => true end "
               "and B = class {} end in 0 end")
    assert "'A'" in str(exc.value)
    assert "viewing function" in str(exc.value)


def test_annotation_happens_once(s):
    # nested positions must not pile up multiple "(line ...)" suffixes
    with pytest.raises(UnificationError) as exc:
        s.typeof("let a = let b = let c = 1 + true in c end in b end "
                 "in a end")
    assert str(exc.value).count("(line") == 1

"""The REPL main loop, driven end-to-end through a subprocess pipe."""

import subprocess
import sys


def run_repl(script: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lang.repl"],
        input=script, capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_banner_and_expression():
    out = run_repl("1 + 1\n")
    assert "Polymorphic Calculus" in out
    assert "2 : int" in out


def test_val_binding_then_use():
    out = run_repl("val x = 21\nx * 2\n")
    assert "42 : int" in out


def test_multiline_let_block():
    out = run_repl("let x = 5 in\nx + 1\nend;;\n")
    assert "6 : int" in out


def test_type_command():
    out = run_repl(":type fn x => x\n")
    assert "forall t1::U. t1 -> t1" in out


def test_error_does_not_kill_session():
    out = run_repl("1 + true\n2 + 2\n")
    assert "error:" in out
    assert "4 : int" in out


def test_quit_command():
    out = run_repl(":quit\nshould not run\n")
    assert "should not run" not in out


def test_object_workflow_in_repl():
    out = run_repl(
        'val joe = IDView([Name = "Joe", Salary := 2000])\n'
        "query(fn x => x.Salary, joe)\n")
    assert "2000 : int" in out

"""Deeply nested programs: the recursion headroom machinery."""

import sys

import pytest

from repro import Session
from repro.core.limits import deep_recursion


def test_deep_view_composition_chain():
    s = Session()
    s.exec("val o = IDView([f = 0])")
    src = "o"
    for _ in range(300):
        src = f"({src} as fn x => [f = (x.f) + 1])"
    s.bind("deep", src)
    assert s.eval_py("query(fn x => x.f, deep)") == 300


def test_deep_parenthesization():
    s = Session()
    assert s.eval_py("(" * 500 + "7" + ")" * 500) == 7


def test_deep_let_nesting():
    s = Session()
    src = "x0"
    for i in range(400, 0, -1):
        src = f"let x{i - 1} = {i} in {src} end"
    # x0 = 1
    assert s.eval_py(src) == 1


def test_deep_record_nesting_types():
    s = Session()
    src = "1"
    for _ in range(300):
        src = f"[n = {src}]"
    t = s.typeof_str(src + ".n" * 0)
    assert t.startswith("[n = ")


def test_limit_restored_after_use():
    before = sys.getrecursionlimit()
    with deep_recursion():
        pass
    assert sys.getrecursionlimit() == before


def test_limit_restored_after_error():
    before = sys.getrecursionlimit()
    s = Session()
    with pytest.raises(Exception):
        s.eval("1 + true")
    assert sys.getrecursionlimit() == before


def test_excessive_depth_reports_cleanly():
    from repro.errors import EvalError

    def bottomless():
        with deep_recursion():
            raise RecursionError

    with pytest.raises(EvalError, match="nesting exceeds"):
        bottomless()

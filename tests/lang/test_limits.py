"""Deeply nested programs: the recursion headroom machinery."""

import sys

import pytest

from repro import Session
from repro.core.limits import deep_recursion


def test_deep_view_composition_chain():
    s = Session()
    s.exec("val o = IDView([f = 0])")
    src = "o"
    for _ in range(300):
        src = f"({src} as fn x => [f = (x.f) + 1])"
    s.bind("deep", src)
    assert s.eval_py("query(fn x => x.f, deep)") == 300


def test_deep_parenthesization():
    s = Session()
    assert s.eval_py("(" * 500 + "7" + ")" * 500) == 7


def test_deep_let_nesting():
    s = Session()
    src = "x0"
    for i in range(400, 0, -1):
        src = f"let x{i - 1} = {i} in {src} end"
    # x0 = 1
    assert s.eval_py(src) == 1


def test_deep_record_nesting_types():
    s = Session()
    src = "1"
    for _ in range(300):
        src = f"[n = {src}]"
    t = s.typeof_str(src + ".n" * 0)
    assert t.startswith("[n = ")


def test_limit_restored_after_use():
    before = sys.getrecursionlimit()
    with deep_recursion():
        pass
    assert sys.getrecursionlimit() == before


def test_limit_restored_after_error():
    before = sys.getrecursionlimit()
    s = Session()
    with pytest.raises(Exception):
        s.eval("1 + true")
    assert sys.getrecursionlimit() == before


def test_excessive_depth_reports_cleanly():
    from repro.errors import EvalError

    def bottomless():
        with deep_recursion():
            raise RecursionError

    with pytest.raises(EvalError, match="nesting exceeds"):
        bottomless()


# -- every Session entry point is guarded (regression: exec's bare-
# -- expression path, fun groups and rec-class groups used to run
# -- inference outside deep_recursion and die with a raw RecursionError) --

def _deep_expr(levels=800):
    return "(" * levels + "1" + ")" * levels + "".join(
        [" + 1"] * 0)


def test_exec_bare_expression_is_guarded():
    s = Session()
    low = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        assert s.exec(_deep_expr()).value == 1  # would blow a 1000 stack
    finally:
        sys.setrecursionlimit(low)


def test_exec_fun_group_is_guarded():
    s = Session()
    body = _deep_expr(600)
    sys.setrecursionlimit(1000)
    try:
        s.exec(f"fun deep_f x = {body} and deep_g x = deep_f x")
        assert s.eval_py("deep_g 0") == 1
    finally:
        sys.setrecursionlimit(50_000)


def test_exec_rec_classes_is_guarded():
    s = Session()
    deep_pred = "fn o => " + "(" * 500 + "true" + ")" * 500
    sys.setrecursionlimit(1000)
    try:
        s.exec("val A = class {} includes B as fn x => x "
               f"where {deep_pred} end "
               "and B = class {} includes A as fn x => x "
               "where fn o => true end")
        assert s.eval_py("c-query(fn S => size(S), A)") == 0
    finally:
        sys.setrecursionlimit(50_000)


def test_prepare_is_guarded():
    s = Session()
    sys.setrecursionlimit(1000)
    try:
        q = s.prepare(_deep_expr())
        assert q().value == 1
    finally:
        sys.setrecursionlimit(50_000)

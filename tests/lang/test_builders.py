"""The fluent Python builder API (repro.lang.builders)."""

import pytest

from repro import Session
from repro.lang import builders as B
from repro.lang.pyconv import value_to_python


@pytest.fixture()
def s():
    return Session()


def run(s, x):
    return value_to_python(s.eval_term(x.term), s.machine)


def test_literals(s):
    assert run(s, B.lit(5)) == 5
    assert run(s, B.lit("hi")) == "hi"
    assert run(s, B.lit(True)) is True
    assert run(s, B.unit()) is None


def test_lift_rejects_unknown(s):
    with pytest.raises(TypeError):
        B.lift(1.5)


def test_operators(s):
    assert run(s, B.lit(2) + 3 * B.lit(4)) == 14
    assert run(s, B.lit(10) - 4) == 6
    assert run(s, 100 - B.lit(1)) == 99
    assert run(s, B.lit(1) < 2) is True
    assert run(s, B.lit(2) >= 3) is False
    assert run(s, B.lit("a").concat("b")) == "ab"


def test_eq_and_ne(s):
    assert run(s, B.lit(1) == 1) is True
    assert run(s, B.lit(1) != 1) is False


def test_record_and_projection(s):
    rec = B.record(A=1, B=B.mut(2))
    assert run(s, rec) == {"A": 1, "B": 2}
    assert run(s, B.let("r", rec, lambda r: r.A + r.field("B"))) == 3


def test_lambda_with_callable_body(s):
    inc = B.lam("x", lambda x: x + 1)
    assert run(s, inc(41)) == 42


def test_lambda_with_expression_body(s):
    const7 = B.lam("x", B.lit(7))
    assert run(s, const7(0)) == 7


def test_let_and_fix(s):
    fact = B.fix("f", lambda f: B.lam("n", lambda n: B.if_(
        n < 1, 1, n * f(n - 1))))
    assert run(s, fact(5)) == 120


def test_sets_and_builtins(s):
    assert run(s, B.union(B.set_(1, 2), B.set_(2, 3))) == [1, 2, 3]
    assert run(s, B.member(2, B.set_(1, 2))) is True
    assert run(s, B.size(B.set_(1, 1, 2))) == 2
    assert run(s, B.remove(B.set_(1, 2), B.set_(1))) == [2]


def test_hom(s):
    total = B.hom(B.set_(1, 2, 3), B.lam("x", lambda x: x),
                  B.lam("a", lambda a: B.lam("b", lambda b: a + b)), 0)
    assert run(s, total) == 6


def test_object_lifecycle(s):
    joe = B.idview(B.record(Name="Joe", Salary=B.mut(2000),
                            Bonus=B.mut(5000)))
    view = B.lam("x", lambda x: B.record(
        Income=x.Salary, Bonus=B.extract(x, "Bonus")))
    prog = B.let("joe", joe, lambda j: B.let(
        "v", B.as_view(j, view), lambda v: B.query(
            B.lam("p", lambda p: p.Income * 12 + p.Bonus), v)))
    assert run(s, prog) == 29000


def test_extract_immutable_sharing(s):
    prog = B.let(
        "r", B.record(S=B.mut(10)),
        lambda r: B.let(
            "ro", B.record(I=B.extract(r, "S", mutable=False)),
            lambda ro: B.let(
                "u", B.update(r, "S", 99),
                lambda _u: ro.I)))
    assert run(s, prog) == 99


def test_fuse_and_relobj(s):
    prog = B.let("o", B.idview(B.record(A=1)), lambda o: B.size(
        B.fuse(o, B.as_view(o, B.lam("x", lambda x: B.record(B=x.A))))))
    assert run(s, prog) == 1
    rel = B.let(
        "a", B.idview(B.record(N=1)),
        lambda a: B.let(
            "b", B.idview(B.record(M=2)),
            lambda b: B.query(
                B.lam("t", lambda t: t.left.N + t.right.M),
                B.relobj(left=a, right=b))))
    assert run(s, rel) == 3


def test_class_and_cquery(s):
    prog = B.let(
        "o", B.idview(B.record(Name="n", Sex="f")),
        lambda o: B.let(
            "Base", B.class_(B.set_(o)),
            lambda base: B.cquery(
                B.lam("S", lambda S: B.size(S)),
                B.class_(None, B.include(
                    base,
                    B.lam("x", lambda x: B.record(Name=x.Name)),
                    B.lam("i", lambda i: B.query(
                        B.lam("v", lambda v: v.Sex == "f"), i)))))))
    assert run(s, prog) == 1


def test_let_classes_recursive(s):
    seed = B.idview(B.record(Name="seed"))
    ident_view = B.lam("x", lambda x: B.record(Name=x.Name))
    prog = B.let("seed", seed, lambda sd: B.let_classes(
        {"A": B.class_(B.set_(sd), B.include(B.var("B"), ident_view)),
         "B": B.class_(None, B.include(B.var("A"), ident_view))},
        lambda a, b: B.cquery(B.lam("S", lambda S: B.size(S)), b)))
    assert run(s, prog) == 1


def test_let_classes_rejects_non_class(s):
    with pytest.raises(TypeError):
        B.let_classes({"A": B.lit(1)}, B.lit(0))


def test_insert_delete(s):
    s.exec("val C = class {} end")
    s.eval_term(B.insert(B.idview(B.record(Name="x")), B.var("C")).term)
    assert s.eval_py("c-query(fn S => size(S), C)") == 1


def test_builders_typecheck_through_session(s):
    from repro.errors import UnificationError
    bad = B.lit(1) + "two"
    with pytest.raises(UnificationError):
        s.eval_term(bad.term)


def test_numeric_labels_via_field(s):
    pair = B.record(**{"1": 10, "2": 20})
    assert run(s, B.let("p", pair, lambda p: p.field("1") + p.field("2"))) \
        == 30

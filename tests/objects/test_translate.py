"""Figure 3: translation of objects into the core (Proposition 3).

Each test translates a program, re-infers it in the core language (no
object constructs remain), checks the internal-representation relation on
the types, and — where the paper's semantics is deterministic — compares
evaluation results against the native machine.
"""

import pytest

from repro import Session
from repro.core import terms as T
from repro.core.env import initial_type_env
from repro.core.infer import infer
from repro.errors import TranslationError, UnificationError
from repro.lang.pyconv import value_to_python
from repro.objects.translate import (internal_representation_matches,
                                     translate_objects)
from repro.syntax.parser import parse_expression


def contains_object_nodes(term: T.Term) -> bool:
    if isinstance(term, (T.IDView, T.AsView, T.Query, T.Fuse, T.RelObj)):
        return True
    return any(contains_object_nodes(sub) for sub in T.iter_subterms(term))


def roundtrip(src: str):
    """Translate, typecheck both, evaluate both, return (native, core)."""
    s = Session()
    env = s.type_env
    term = s.parse(src)
    t_ext = infer(term, env)
    tr = translate_objects(term)
    assert not contains_object_nodes(tr)
    t_core = infer(tr, env)
    assert internal_representation_matches(t_core, t_ext)
    native = s.eval_py(src)
    translated = value_to_python(s.machine.eval(tr, s.runtime_env),
                                 s.machine)
    return native, translated


def test_idview_translation():
    native, translated = roundtrip(
        "query(fn x => x.A, IDView([A = 41]))")
    assert native == translated == 41


def test_asview_translation():
    native, translated = roundtrip(
        "let o = IDView([A = 2]) in "
        "query(fn x => x.B, (o as fn x => [B = (x.A) * 3])) end")
    assert native == translated == 6


def test_view_update_through_translation():
    src = ("let o = IDView([A := 1]) in "
           "let v = (o as fn x => [B := extract(x, A)]) in "
           "let u = query(fn x => update(x, B, 9), v) in "
           "query(fn x => x.A, o) end end end")
    native, translated = roundtrip(src)
    assert native == translated == 9


def test_fuse_positive_translation():
    src = ("let o = IDView([A = 5]) in "
           "let v = (o as fn x => [B = x.A + 1]) in "
           "size(fuse(o, v)) end end")
    native, translated = roundtrip(src)
    assert native == translated == 1


def test_fuse_negative_translation():
    src = ("size(fuse(IDView([A = 1]), IDView([A = 2])))")
    native, translated = roundtrip(src)
    assert native == translated == 0


def test_fuse_evaluates_arguments_once():
    # the let-binding repair: Figure 3's literal meta-notation would
    # duplicate tr(e1); here each argument evaluates exactly once.
    s = Session()
    src = "size(fuse(IDView([A = 1]), IDView([A = 2])))"
    tr = translate_objects(s.parse(src))
    s.metrics.reset()
    s.machine.eval(tr, s.runtime_env)
    # 2 raw records + 2 pair records; duplication of tr(e_i) would create
    # the raws twice (6 records total)
    assert s.metrics.records_created == 4


def test_nary_fuse_translation():
    src = ("let o = IDView([A = 1]) in "
           "let v = (o as fn x => [B = 2]) in "
           "let w = (o as fn x => [C = 3]) in "
           "hom(fuse(o, v, w), "
           "    fn f => query(fn p => ((p.1).A) + ((p.2).B) + (p.3).C, f), "
           "    fn a => fn b => a + b, 0) end end end")
    native, translated = roundtrip(src)
    assert native == translated == 6


def test_relobj_translation():
    src = ("let a = IDView([A = 1]) in let b = IDView([B = 2]) in "
           "query(fn t => ((t.x).A) + (t.y).B, relobj(x = a, y = b)) "
           "end end")
    native, translated = roundtrip(src)
    assert native == translated == 3


def test_query_translation_materializes_lazily():
    src = ("let o = IDView([A := 1]) in "
           "let v = (o as fn x => [B = (x.A) * 2]) in "
           "let u = query(fn x => update(x, A, 21), o) in "
           "query(fn x => x.B, v) end end end")
    native, translated = roundtrip(src)
    assert native == translated == 42


def test_polymorphic_function_translation_typechecks():
    env = initial_type_env()
    term = parse_expression(
        "fn o => query(fn x => (x.Income) * 12 + x.Bonus, o)")
    t_ext = infer(term, env)
    tr = translate_objects(term)
    t_core = infer(tr, env)
    assert internal_representation_matches(t_core, t_ext)


def test_translation_rejects_class_constructs():
    term = parse_expression("c-query(fn s => s, C)")
    with pytest.raises(TranslationError):
        translate_objects(term)


def test_heterogeneous_raw_set_gap():
    """The documented gap (DESIGN.md §6.7): the extended program types but
    its translation does not — the pair encoding exposes raw types."""
    env = initial_type_env()
    src = ("let a = IDView([N = 1]) in "
           "let b = IDView([N = 2, Extra = true]) in "
           "{a, (b as fn x => [N = x.N])} end end")
    term = parse_expression(src)
    infer(term, env)  # extended language: fine
    tr = translate_objects(term)
    with pytest.raises(UnificationError):
        infer(tr, env)


def test_internal_representation_matcher_rejects_wrong_shapes():
    from repro.core.types import (BOOL, FieldType, INT, TFun, TObj,
                                  TRecord)
    good = TRecord({"1": FieldType(INT, False),
                    "2": FieldType(TFun(INT, BOOL), False)})
    assert internal_representation_matches(good, TObj(BOOL))
    # raw type mismatch between the two components
    bad = TRecord({"1": FieldType(BOOL, False),
                   "2": FieldType(TFun(INT, BOOL), False)})
    assert not internal_representation_matches(bad, TObj(BOOL))
    # not a pair at all
    assert not internal_representation_matches(INT, TObj(BOOL))


def test_translation_is_pure():
    term = parse_expression("query(fn x => x.A, IDView([A = 1]))")
    before = repr(term)
    translate_objects(term)
    assert repr(term) == before

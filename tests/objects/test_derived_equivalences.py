"""Section 3.1: the derived operations vs their literal paper definitions.

The library desugars ``select``/``relation`` into *fused* hom pipelines for
efficiency; the paper defines them via explicit map/filter compositions.
These tests run both and assert observational agreement, validating that
the fusion is a pure optimization.
"""

import pytest

from repro import Session


@pytest.fixture()
def s():
    sess = Session()
    sess.exec('''
        val p1 = IDView([Name = "p1", N = 1])
        val p2 = IDView([Name = "p2", N = 2])
        val p3 = IDView([Name = "p3", N = 3])
        val S = {p1, p2, p3}
    ''')
    return sess


def names(s, src):
    return s.eval_py(f"map(fn o => query(fn v => v, o), {src})")


def test_select_equals_map_after_filter(s):
    fused = names(s, "select as fn x => [Name = x.Name] from S "
                     "where fn o => query(fn v => v.N > 1, o)")
    literal = names(
        s, "map(fn x => (x as fn v => [Name = v.Name]), "
           "filter(fn o => query(fn v => v.N > 1, o), S))")
    assert fused == literal == [{"Name": "p2"}, {"Name": "p3"}]


def test_objeq_equals_fuse_emptiness(s):
    # objeq(e1,e2) is *defined* as not(eq(fuse(e1,e2), {})) — check both
    # spellings on both outcomes
    s.exec("val v1 = (p1 as fn x => [M = x.N])")
    for lhs, rhs, expected in [("p1", "v1", True), ("p1", "p2", False)]:
        assert s.eval_py(f"objeq({lhs}, {rhs})") is expected
        assert s.eval_py(
            f"not(eq(fuse({lhs}, {rhs}), {{}}))") is expected


def test_intersect_equals_hom_prod_fuse(s):
    s.exec("val T = {p2, p3}")
    via_sugar = s.eval_py(
        "map(fn o => query(fn p => (p.1).Name, o), intersect(S, T))")
    via_literal = s.eval_py(
        "map(fn o => query(fn p => (p.1).Name, o), "
        "hom(prod(S, T), fn x => fuse(x.1, x.2), union, {}))")
    assert via_sugar == via_literal == ["p2", "p3"]


def test_relation_equals_paper_pipeline(s):
    s.exec('val d1 = IDView([Dept = 1])')
    s.exec('val d2 = IDView([Dept = 2])')
    s.exec("val D = {d1, d2}")
    pred = ("query(fn v => v.N, x) = query(fn v => v.Dept, d)")
    via_sugar = s.eval_py(
        "map(fn r => query(fn v => ((v.l).Name) ^ \"~\", r), "
        f"relation [l = x, r = d] from x in S, d in D where {pred})")
    # the paper's implementation: map over prod building (relobj, P)
    # pairs, filter on the flag, project the relobj
    via_literal = s.eval_py(
        "map(fn r => query(fn v => ((v.l).Name) ^ \"~\", r), "
        "map(fn y => y.1, "
        "    filter(fn y => y.2, "
        "        map(fn t => let x = t.1 in let d = t.2 in "
        f"            (relobj(l = x, r = d), {pred}) end end, "
        "            prod(S, D)))))")
    assert sorted(via_sugar) == sorted(via_literal) == ["p1~", "p2~"]


def test_relation_avoids_rejected_relobj_identities(s):
    """Our desugaring only creates relation objects for tuples passing the
    predicate; the paper's pipeline creates one per tuple and discards.
    Both yield the same result set; the fused form allocates less."""
    s.exec("val D = {IDView([Dept = 1])}")
    s.metrics.reset()
    s.eval("relation [l = x, r = d] from x in S, d in D "
           "where query(fn v => v.N, x) = query(fn v => v.Dept, d)")
    fused_objs = s.metrics.objects_created
    s.metrics.reset()
    s.eval("map(fn y => y.1, filter(fn y => y.2, "
           "map(fn t => let x = t.1 in let d = t.2 in "
           "(relobj(l = x, r = d), "
           "query(fn v => v.N, x) = query(fn v => v.Dept, d)) end end, "
           "prod(S, D))))")
    literal_objs = s.metrics.objects_created
    assert fused_objs < literal_objs  # 1 vs 3 relation objects


def test_member_definable_via_hom_and_eq_on_plain_sets(s):
    # the paper: member is definable from hom+eq; on non-object sets the
    # builtin agrees with that definition
    s.exec("fun member' x = fn T => "
           "hom(T, fn y => eq(x, y), fn a => fn b => "
           "if a then true else b, false)")
    assert s.eval_py("member'(2)({1, 2, 3})") == \
        s.eval_py("member(2, {1, 2, 3})") is True
    assert s.eval_py("member'(9)({1, 2, 3})") == \
        s.eval_py("member(9, {1, 2, 3})") is False

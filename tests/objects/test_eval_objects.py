"""Evaluation of the object/view algebra (Section 3)."""

import pytest

from repro import Session


@pytest.fixture()
def s():
    return Session()


def test_idview_materializes_to_raw(s):
    s.exec("val o = IDView([A = 1, B := 2])")
    assert s.eval_py("query(fn x => x, o)") == {"A": 1, "B": 2}


def test_idview_query_identity_returns_the_raw_record(s):
    # the identity view exposes the raw record itself: updating the
    # materialization updates the raw object
    s.exec("val o = IDView([A := 1])")
    s.eval("query(fn x => update(x, A, 9), o)")
    assert s.eval_py("query(fn x => x.A, o)") == 9


def test_view_composition_renaming_hiding_computed(s):
    s.exec('val o = IDView([Name = "N", BirthYear = 1960, Salary := 100])')
    s.exec("val v = (o as fn x => [Who = x.Name, "
           "Age = This_year() - x.BirthYear])")
    assert s.eval_py("query(fn x => x, v)") == {"Who": "N", "Age": 34}


def test_views_evaluate_lazily(s):
    # the view function runs at query time: raw updates are always seen
    s.exec("val o = IDView([A := 1])")
    s.exec("val v = (o as fn x => [Double = (x.A) * 2])")
    assert s.eval_py("query(fn x => x.Double, v)") == 2
    s.eval("query(fn x => update(x, A, 21), o)")
    assert s.eval_py("query(fn x => x.Double, v)") == 42


def test_view_composition_is_function_composition(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = ((o as fn x => [B = x.A + 1]) as fn x => [C = x.B * 10])")
    assert s.eval_py("query(fn x => x.C, v)") == 20


def test_composed_view_keeps_identity(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = ((o as fn x => [B = x.A]) as fn x => [C = x.B])")
    assert s.eval_py("objeq(o, v)") is True


def test_mutability_transfer_through_extract(s):
    # the view exposes Bonus mutably via extract; updating through the view
    # hits the raw object (the adjustBonus mechanism)
    s.exec("val o = IDView([Salary := 100, Bonus := 5])")
    s.exec("val v = (o as fn x => [Income = x.Salary, "
           "Bonus := extract(x, Bonus)])")
    s.eval("query(fn x => update(x, Bonus, 77), v)")
    assert s.eval_py("query(fn x => x.Bonus, o)") == 77


def test_view_without_extract_copies_value(s):
    # an immutable computed field is a value copy: updating the raw later
    # changes subsequent queries but each materialization is fresh
    s.exec("val o = IDView([A := 1])")
    s.exec("val v = (o as fn x => [B = x.A])")
    assert s.eval_py("query(fn x => x.B, v)") == 1
    s.eval("query(fn x => update(x, A, 2), o)")
    assert s.eval_py("query(fn x => x.B, v)") == 2


def test_each_materialization_is_fresh_record(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [B = x.A])")
    # two materializations are different records (identity created by the
    # view body each time)
    assert s.eval_py(
        "eq(query(fn x => x, v), query(fn x => x, v))") is False


def test_fuse_same_raw_singleton(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [B = x.A * 2])")
    out = s.eval_py("map(fn f => query(fn p => ((p.1).A, (p.2).B), f), "
                    "fuse(o, v))")
    assert out == [{"1": 1, "2": 2}]


def test_fuse_different_raw_empty(s):
    s.exec("val o1 = IDView([A = 1])")
    s.exec("val o2 = IDView([A = 2])")
    assert s.eval_py("fuse(o1, o2)") == []


def test_fuse_preserves_identity(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [B = x.A])")
    out = s.eval_py("map(fn f => objeq(f, o), fuse(o, v))")
    assert out == [True]


def test_nary_fuse(s):
    s.exec("val o = IDView([A = 1])")
    s.exec("val v = (o as fn x => [B = 2])")
    s.exec("val w = (o as fn x => [C = 3])")
    out = s.eval_py(
        "map(fn f => query(fn p => ((p.1).A) + ((p.2).B) + (p.3).C, f), "
        "fuse(o, v, w))")
    assert out == [6]


def test_relobj_creates_new_identity(s):
    s.exec("val a = IDView([A = 1])")
    s.exec("val b = IDView([B = 2])")
    s.exec("val r1 = relobj(x = a, y = b)")
    s.exec("val r2 = relobj(x = a, y = b)")
    assert s.eval_py("objeq(r1, r2)") is False  # new raw each time


def test_relobj_views_compose_per_field(s):
    s.exec("val a = IDView([A = 1])")
    s.exec("val va = (a as fn x => [A2 = (x.A) * 2])")
    s.exec("val b = IDView([B = 10])")
    s.exec("val r = relobj(l = va, r = b)")
    assert s.eval_py("query(fn t => ((t.l).A2) + (t.r).B, r)") == 12


def test_relobj_sees_raw_updates(s):
    s.exec("val a = IDView([A := 1])")
    s.exec("val r = relobj(only = a)")
    s.eval("query(fn x => update(x, A, 5), a)")
    assert s.eval_py("query(fn t => (t.only).A, r)") == 5


def test_select_filters_and_reviews(s):
    s.exec("val s1 = IDView([N = 1])")
    s.exec("val s2 = IDView([N = 2])")
    out = s.eval_py(
        "map(fn o => query(fn v => v.M, o), "
        "select as fn x => [M = (x.N) * 10] from {s1, s2} "
        "where fn o => query(fn x => x.N > 1, o))")
    assert out == [20]


def test_intersect_by_identity(s):
    s.exec("val shared = IDView([N = 1])")
    s.exec("val only1 = IDView([N = 2])")
    s.exec("val only2 = IDView([N = 3])")
    out = s.eval_py(
        "map(fn o => query(fn p => (p.1).N, o), "
        "intersect({shared, only1}, {shared, only2}))")
    assert out == [1]


def test_relation_query(s):
    s.exec("val p1 = IDView([Name = \"P1\", Dept = \"CS\"])")
    s.exec("val d1 = IDView([Dept = \"CS\", Building = \"B7\"])")
    s.exec("val d2 = IDView([Dept = \"Bio\", Building = \"B2\"])")
    out = s.eval_py(
        'map(fn r => query(fn v => (v.person.Name) ^ "@" '
        '^ (v.dept.Building), r), '
        "relation [person = p, dept = d] from p in {p1}, d in {d1, d2} "
        "where query(fn x => x.Dept, p) = query(fn x => x.Dept, d))")
    assert out == ["P1@B7"]


def test_metrics_materializations(s):
    s.exec("val o = IDView([A = 1])")
    s.metrics.reset()
    s.eval("query(fn x => x.A, o)")
    assert s.metrics.view_materializations == 1

"""The derived operation builders of Section 3.1 (repro.objects.algebra)."""

from repro.core import terms as T
from repro.core.env import initial_type_env
from repro.core.infer import infer
from repro.objects import algebra as A


def test_gensym_fresh_and_unparseable():
    a, b = A.gensym(), A.gensym()
    assert a != b
    assert "%" in a  # cannot collide with surface identifiers


def test_mk_app_spine():
    e = A.mk_app(T.Var("f"), T.Var("a"), T.Var("b"))
    assert isinstance(e, T.App) and isinstance(e.fn, T.App)


def test_mk_lam_currying():
    e = A.mk_lam(["x", "y"], T.Var("x"))
    assert isinstance(e, T.Lam) and isinstance(e.body, T.Lam)
    assert e.param == "x" and e.body.param == "y"


def test_mk_pair_shape():
    e = A.mk_pair(T.Var("a"), T.Var("b"))
    assert [f.label for f in e.fields] == ["1", "2"]
    assert not any(f.mutable for f in e.fields)


def test_mk_map_types():
    env = initial_type_env()
    term = T.Lam("f", T.Lam("s", A.mk_map(T.Var("f"), T.Var("s"))))
    t = infer(term, env)  # (a -> b) -> {a} -> {b}
    from repro.core.types import TFun, TSet, resolve
    t = resolve(t)
    assert isinstance(t, TFun)
    assert isinstance(resolve(resolve(t.cod).dom), TSet)


def test_mk_filter_types():
    env = initial_type_env()
    term = T.Lam("p", T.Lam("s", A.mk_filter(T.Var("p"), T.Var("s"))))
    infer(term, env)


def test_mk_select_uses_asview():
    sel = A.mk_select(T.Var("v"), T.Var("s"), T.Var("p"))
    found = []

    def walk(t):
        found.append(type(t).__name__)
        for sub in T.iter_subterms(t):
            walk(sub)

    walk(sel)
    assert "AsView" in found
    assert found.count("Prod") == 0


def test_mk_intersect_singleton_identity():
    s = T.Var("S")
    assert A.mk_intersect([s]) is s


def test_mk_intersect_uses_prod_and_fuse():
    sel = A.mk_intersect([T.Var("a"), T.Var("b"), T.Var("c")])
    names = []

    def walk(t):
        names.append(type(t).__name__)
        for sub in T.iter_subterms(t):
            walk(sub)

    walk(sel)
    assert "Prod" in names and "Fuse" in names


def test_mk_intersect_empty_rejected():
    import pytest
    with pytest.raises(ValueError):
        A.mk_intersect([])


def test_mk_relation_binds_each_variable():
    rel = A.mk_relation(
        [("l", T.Var("x1"))], [("x1", T.Var("S1")), ("x2", T.Var("S2"))],
        T.Const(True, __import__(
            "repro.core.types", fromlist=["BOOL"]).BOOL))
    names = []

    def walk(t):
        if isinstance(t, T.Let):
            names.append(t.name)
        for sub in T.iter_subterms(t):
            walk(sub)

    walk(rel)
    assert "x1" in names and "x2" in names


def test_mk_relation_requires_binders():
    import pytest
    from repro.core.types import BOOL
    with pytest.raises(ValueError):
        A.mk_relation([("l", T.Var("x"))], [], T.Const(True, BOOL))


def test_mk_objeq_shape():
    e = A.mk_objeq(T.Var("a"), T.Var("b"))
    assert isinstance(e, T.App)
    assert isinstance(e.fn, T.Var) and e.fn.name == "not"


def test_mk_seq_discards_first():
    e = A.mk_seq(T.Var("a"), T.Var("b"))
    assert isinstance(e, T.Let)
    assert isinstance(e.body, T.Var) and e.body.name == "b"

"""The optional purity check for viewing functions (Section 3.1's
"it would be useful for the type system to check whether e2 changes the
state of the raw object")."""

import pytest

from repro import Session
from repro.objects.effects import (ImpureViewError, PurityEnv,
                                   expression_is_impure)
from repro.syntax.parser import parse_expression


def impure(src, env=None):
    return expression_is_impure(parse_expression(src), env)


def test_pure_expressions():
    assert not impure("fn x => [A = x.B]")
    assert not impure("fn x => x.A + 1")
    assert not impure("{1, 2}")
    assert not impure("fn x => [B := extract(x, A)]")  # sharing, not update


def test_update_is_impure():
    assert impure("fn x => update(x, A, 1)")
    assert impure("fn x => let u = update(x, A, 1) in x end")


def test_insert_delete_are_impure():
    assert impure("fn o => insert(o, C)")
    assert impure("fn o => delete(o, C)")


def test_impurity_flows_through_let():
    assert impure("let f = fn x => update(x, A, 1) in fn y => f y end")
    assert not impure("let f = fn x => update(x, A, 1) in fn y => y end")


def test_shadowing_restores_purity():
    assert not impure(
        "let f = fn x => update(x, A, 1) in "
        "let f = fn x => x in fn y => f y end end")


def test_purity_env_names():
    env = PurityEnv({"dirty"})
    assert impure("fn x => dirty x", env)
    assert not impure("fn x => clean x", env)


def test_session_pure_views_accepts_pure_view():
    s = Session(pure_views=True)
    s.exec("val o = IDView([A = 1])")
    assert s.eval_py("query(fn v => v.B, (o as fn x => [B = x.A]))") == 1


def test_session_pure_views_rejects_updating_view():
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    with pytest.raises(ImpureViewError):
        s.eval("(o as fn x => let u = update(x, A, 2) in x end)")


def test_session_pure_views_rejects_impure_include_view():
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    s.exec("val Base = class {o} end")
    with pytest.raises(ImpureViewError):
        s.eval("class {} includes Base "
               "as fn x => let u = update(x, A, 0) in x end "
               "where fn i => true end")


def test_session_pure_views_allows_updating_queries():
    # the paper routes updates through query; those remain legal
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    s.eval("query(fn x => update(x, A, 9), o)")
    assert s.eval_py("query(fn x => x.A, o)") == 9


def test_session_pure_views_allows_impure_predicates():
    # only the *view* position is restricted
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    s.exec("val Base = class {o} end")
    s.eval("class {} includes Base as fn x => [A = x.A] "
           "where fn i => query(fn x => "
           "let u = update(x, A, x.A) in true end, i) end")


def test_session_tracks_impure_bindings():
    s = Session(pure_views=True)
    s.exec("val bump = fn x => update(x, A, 1)")
    s.exec("val o = IDView([A := 1])")
    with pytest.raises(ImpureViewError):
        s.eval("(o as fn x => let u = bump x in x end)")


def test_session_tracks_impure_fun_decls():
    s = Session(pure_views=True)
    s.exec("fun bump x = update(x, A, 1)")
    s.exec("val o = IDView([A := 1])")
    with pytest.raises(ImpureViewError):
        s.eval("(o as fn x => let u = bump x in x end)")


def test_default_session_does_not_enforce_purity():
    s = Session()
    s.exec("val o = IDView([A := 1])")
    s.eval("query(fn v => v.A, "
           "(o as fn x => let u = update(x, A, 7) in x end))")
    assert s.eval_py("query(fn x => x.A, o)") == 7


def test_latent_effect_in_set_applied_via_hom():
    """An effectful function smuggled through a set literal and applied
    element-wise by ``hom`` must be caught: the set's latent bit flows
    into the application."""
    assert impure(
        "fn x => hom({fn y => update(y, A, 1)}, fn g => g x, "
        "fn a => fn b => a, x)")
    # the same shape with a pure element function stays pure
    assert not impure(
        "fn x => hom({fn y => y.A}, fn g => g x, fn a => fn b => a, 0)")


def test_latent_effect_in_record_field():
    """Storing an effectful function in a record field and applying the
    projection is impure; merely storing it is only latent."""
    assert impure(
        "fn x => let r = [F = fn y => update(y, A, 1)] in (r.F) x end")
    # without the application the *expression* still carries the latent
    # bit (its value can mutate when applied later)
    assert impure("[F = fn y => update(y, A, 1)]")
    assert not impure("fn x => let r = [F = fn y => y.A] in (r.F) x end")


def test_effect_hidden_under_fix():
    """A recursive function whose body updates is impure even though the
    update sits under the ``fix`` binder."""
    assert impure("fix f. fn x => if x.A < 1 then x "
                  "else f (update(x, A, x.A))")
    assert not impure("fix f. fn n => if n < 1 then 1 else f (n - 1)")


def test_session_rejects_hom_smuggled_effect():
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    with pytest.raises(ImpureViewError):
        s.eval("(o as fn x => let u = hom({fn y => update(y, A, 2)}, "
               "fn g => g x, fn a => fn b => a, ()) in x end)")


def test_session_rejects_fix_hidden_effect():
    s = Session(pure_views=True)
    s.exec("val o = IDView([A := 1])")
    with pytest.raises(ImpureViewError):
        s.eval("(o as fix f. fn x => if x.A < 1 then x "
               "else let u = update(x, A, x.A - 1) in f x end)")


def test_paper_examples_all_pure():
    """Every Section 3.3 / 4.2 viewing function passes the check."""
    s = Session(pure_views=True)
    s.exec('''
        val joe = IDView([Name = "Joe", BirthYear = 1955,
                          Salary := 2000, Bonus := 5000])
        val joe_view = (joe as fn x => [Name = x.Name,
                                        Age = This_year() - x.BirthYear,
                                        Income = x.Salary,
                                        Bonus := extract(x, Bonus)])
    ''')
    s.exec('''
        val FM = class {}
          includes (class {joe_view} end)
            as fn v => [Name = v.Name]
            where fn o => query(fn x => x.Age > 10, o)
        end
    ''')
    assert s.eval_py(
        "c-query(fn S => map(fn o => query(fn v => v.Name, o), S), FM)") \
        == ["Joe"]

"""Figure 2 typing rules: (id), (vcomp), (query), (fuse), (vrel)."""

import pytest

from repro.errors import KindError, TypeInferenceError, UnificationError
from tests.conftest import typeof


def test_idview_type():
    assert typeof("IDView([A = 1, B := true])") == "obj([A = int, B := bool])"


def test_idview_requires_record():
    # rule (id): K |- tau :: [[ ]]
    with pytest.raises(KindError):
        typeof("IDView(3)")
    with pytest.raises(KindError):
        typeof("IDView({1})")


def test_idview_polymorphic_over_record_kind():
    assert typeof("fn x => IDView(x)") == \
        "forall t1::[[]]. t1 -> obj(t1)"


def test_vcomp_type():
    assert typeof("(IDView([A = 1]) as fn x => [B = x.A])") == \
        "obj([B = int])"


def test_vcomp_view_need_not_return_record():
    # rule (vcomp) allows any tau2
    assert typeof("(IDView([A = 1]) as fn x => x.A)") == "obj(int)"


def test_vcomp_requires_object():
    with pytest.raises(UnificationError):
        typeof("([A = 1] as fn x => x)")


def test_vcomp_domain_must_match_view_type():
    with pytest.raises(Exception):
        typeof("(IDView([A = 1]) as fn x => x.Nope)")


def test_query_type():
    assert typeof("query(fn x => x.A, IDView([A = 1]))") == "int"


def test_query_requires_object():
    with pytest.raises(UnificationError):
        typeof("query(fn x => x, [A = 1])")


def test_query_polymorphic():
    assert typeof("fn o => query(fn x => x.Name, o)") == \
        "forall t1::U. forall t2::[[Name = t1]]. obj(t2) -> t1"


def test_fuse_type_binary():
    t = typeof("fuse(IDView([A = 1]), IDView([B = true]))")
    assert t == "{obj([1 = [A = int], 2 = [B = bool]])}"


def test_fuse_type_ternary():
    t = typeof("fuse(IDView([A = 1]), IDView([B = 2]), IDView([C = 3]))")
    assert t == "{obj([1 = [A = int], 2 = [B = int], 3 = [C = int]])}"


def test_fuse_requires_objects():
    with pytest.raises(UnificationError):
        typeof("fuse([A = 1], IDView([B = 2]))")


def test_relobj_type():
    t = typeof("relobj(l = IDView([A = 1]), r = IDView([B = true]))")
    assert t == "obj([l = [A = int], r = [B = bool]])"


def test_relobj_requires_objects():
    with pytest.raises(UnificationError):
        typeof("relobj(l = 1)")


def test_relobj_duplicate_label():
    with pytest.raises(TypeInferenceError):
        typeof("relobj(l = IDView([A = 1]), l = IDView([A = 2]))")


def test_objeq_type_is_heterogeneous():
    assert typeof("fn a => fn b => objeq(a, b)") == \
        "forall t1::U. forall t2::U. obj(t1) -> obj(t2) -> bool"


def test_select_type():
    t = typeof("fn S => select as fn x => [N = x.Name] from S "
               "where fn o => true")
    assert t == ("forall t1::U. forall t2::[[Name = t1]]. "
                 "{obj(t2)} -> {obj([N = t1])}")


def test_intersect_type_binary():
    t = typeof("fn s1 => fn s2 => intersect(s1, s2)")
    assert t == ("forall t1::U. forall t2::U. "
                 "{obj(t1)} -> {obj(t2)} -> {obj([1 = t1, 2 = t2])}")


def test_wealthy_principal_type():
    # the paper's displayed type for 'wealthy', verbatim modulo var names
    t = typeof(
        "fn S => select as fn x => [Name = x.Name, Age = x.Age] from S "
        "where fn x => query(fn p => (p.Income) * 12 + p.Bonus, x) "
        "> 100000")
    assert t == ("forall t1::U. forall t2::U. "
                 "forall t3::[[Income = int, Bonus = int, Name = t1, "
                 "Age = t2]]. {obj(t3)} -> {obj([Name = t1, Age = t2])}")


def test_annual_income_principal_type():
    assert typeof("fn p => (p.Income) * 12 + p.Bonus") == \
        "forall t1::[[Income = int, Bonus = int]]. t1 -> int"


def test_object_type_not_a_record():
    # obj(tau) cannot be projected directly: query is required
    with pytest.raises(KindError):
        typeof("(IDView([A = 1])).A")

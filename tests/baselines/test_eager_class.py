"""The eager-extent baseline: per-update recomputation and cache hazards."""

import pytest

from repro import Session
from repro.baselines.eager_class import EagerClassMirror


@pytest.fixture()
def s():
    sess = Session()
    sess.exec('val base_obj = IDView([Name = "base", N = 1])')
    sess.exec("val Base = class {base_obj} end")
    sess.exec("val Derived = class {} includes Base "
              "as fn x => [Name = x.Name, N = x.N] "
              "where fn o => query(fn x => x.N > 0, o) end")
    return sess


def test_mirror_reads_cached_extent(s):
    em = EagerClassMirror(s, "Derived")
    assert em.names() == ["base"]
    assert em.recomputations == 1


def test_mirror_insert_recomputes(s):
    em = EagerClassMirror(s, "Derived")
    s.exec('val extra = IDView([Name = "extra", N = 2])')
    em.insert("(extra as fn x => [Name = x.Name, N = x.N])")
    assert em.names() == ["extra", "base"]
    assert em.recomputations == 2


def test_mirror_queries_do_not_recompute(s):
    em = EagerClassMirror(s, "Derived")
    before = em.recomputations
    for _ in range(5):
        em.names()
    assert em.recomputations == before


def test_source_mutation_makes_cache_stale(s):
    # the hazard: eager caches miss mutations of *source* classes
    em = EagerClassMirror(s, "Derived")
    assert em.is_stale() is False
    s.eval('insert(IDView([Name = "sneaky", N = 3]), Base)')
    assert em.is_stale() is True
    assert "sneaky" not in em.names()  # stale read
    # the paper's lazy class sees it immediately
    fresh = s.eval_py(
        "c-query(fn S => map(fn o => query(fn v => v.Name, o), S), "
        "Derived)")
    assert "sneaky" in fresh


def test_delete_recomputes(s):
    em = EagerClassMirror(s, "Derived")
    s.exec('val extra = IDView([Name = "extra", N = 2])')
    em.insert("(extra as fn x => [Name = x.Name, N = x.N])")
    em.delete("(extra as fn x => [Name = x.Name, N = x.N])")
    assert em.names() == ["base"]
    assert em.recomputations == 3

"""The materialized-view baseline: staleness the paper's design avoids."""

import pytest

from repro import Session
from repro.baselines.materialized import MaterializedView


@pytest.fixture()
def s():
    sess = Session()
    sess.exec('val joe = IDView([Name = "Joe", Salary := 2000])')
    return sess


def test_materialized_read(s):
    mv = MaterializedView(s, "joe", "fn x => [Income = x.Salary]")
    assert mv.read("Income") == 2000


def test_materialized_view_goes_stale(s):
    mv = MaterializedView(s, "joe", "fn x => [Income = x.Salary]")
    s.eval("query(fn x => update(x, Salary, 9999), joe)")
    assert mv.read("Income") == 2000  # stale!
    # the paper's lazy view sees the update immediately
    s.exec("val lazy = (joe as fn x => [Income = x.Salary])")
    assert s.eval_py("query(fn v => v.Income, lazy)") == 9999


def test_refresh_resynchronizes(s):
    mv = MaterializedView(s, "joe", "fn x => [Income = x.Salary]")
    s.eval("query(fn x => update(x, Salary, 5), joe)")
    mv.refresh()
    assert mv.read("Income") == 5
    assert mv.refreshes == 2


def test_write_through_copy_does_not_reach_raw(s):
    mv = MaterializedView(s, "joe", "fn x => [Income = x.Salary]")
    mv.write("Income", 1)
    assert s.eval_py("query(fn x => x.Salary, joe)") == 2000
    # whereas the paper's extract-based view writes through:
    s.exec("val through = (joe as fn x => [Income := extract(x, Salary)])")
    s.eval("query(fn v => update(v, Income, 1), through)")
    assert s.eval_py("query(fn x => x.Salary, joe)") == 1


def test_non_ground_fields_rejected(s):
    s.exec("val fancy = IDView([F = fn x => x, N = 1])")
    with pytest.raises(Exception):
        MaterializedView(s, "fancy", "fn x => [F = x.F]")

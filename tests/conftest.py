"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro import Session
from repro.core.env import initial_type_env
from repro.core.infer import infer, infer_scheme
from repro.syntax.parser import parse_expression
from repro.syntax.pretty import pretty_scheme

#: Per-test wall-clock deadline in seconds (pytest-timeout is not a
#: dependency, so this is wired at the conftest level).  A regression in
#: budget enforcement would otherwise hang the suite silently; with the
#: deadline it fails loudly instead.  Override with REPRO_TEST_DEADLINE
#: (0 disables, e.g. for interactive debugging).
_DEADLINE = float(os.environ.get("REPRO_TEST_DEADLINE", "300") or 0)


@pytest.fixture(autouse=True)
def _per_test_deadline():
    if (_DEADLINE <= 0 or not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_DEADLINE:.0f}s per-test deadline "
            "(REPRO_TEST_DEADLINE) — a hang, probably in budget or "
            "recursion enforcement")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, _DEADLINE)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def session() -> Session:
    """A fresh session with the prelude loaded."""
    return Session()


@pytest.fixture()
def bare_session() -> Session:
    """A session without the prelude (for core-only tests)."""
    return Session(load_prelude=False)


@pytest.fixture()
def tenv():
    """A fresh builtin typing environment."""
    return initial_type_env()


def typeof(src: str, env=None) -> str:
    """Infer and pretty print the generalized type of an expression."""
    env = env if env is not None else initial_type_env()
    return pretty_scheme(infer_scheme(parse_expression(src), env))


def infer_type(src: str, env=None):
    """Infer the raw monotype of an expression."""
    env = env if env is not None else initial_type_env()
    return infer(parse_expression(src), env, level=1)

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Session
from repro.core.env import initial_type_env
from repro.core.infer import infer, infer_scheme
from repro.syntax.parser import parse_expression
from repro.syntax.pretty import pretty_scheme


@pytest.fixture()
def session() -> Session:
    """A fresh session with the prelude loaded."""
    return Session()


@pytest.fixture()
def bare_session() -> Session:
    """A session without the prelude (for core-only tests)."""
    return Session(load_prelude=False)


@pytest.fixture()
def tenv():
    """A fresh builtin typing environment."""
    return initial_type_env()


def typeof(src: str, env=None) -> str:
    """Infer and pretty print the generalized type of an expression."""
    env = env if env is not None else initial_type_env()
    return pretty_scheme(infer_scheme(parse_expression(src), env))


def infer_type(src: str, env=None):
    """Infer the raw monotype of an expression."""
    env = env if env is not None else initial_type_env()
    return infer(parse_expression(src), env, level=1)

"""Section 4.2 worked examples: FemaleMember, names query, StudentStaff."""

import pytest

from repro import Session

NAMES = "fn s => map(fn x => query(fn y => y.Name, x), s)"


@pytest.fixture(scope="module")
def s():
    sess = Session()
    sess.exec('''
        val mia  = IDView([Name = "Mia", Age = 34, Sex = "female",
                           Salary := 5100, Degree := "PhD"])
        val noel = IDView([Name = "Noel", Age = 41, Sex = "male",
                           Salary := 4800])
        val ida  = IDView([Name = "Ida", Age = 23, Sex = "female",
                           Degree := "BSc"])
        val sview = fn x => [Name = x.Name, Age = x.Age, Sex = x.Sex,
                             Salary := extract(x, Salary)]
        val tview = fn x => [Name = x.Name, Age = x.Age, Sex = x.Sex,
                             Degree := extract(x, Degree)]
        val Staff   = class {(mia as sview), (noel as sview)} end
        val Student = class {(mia as tview), (ida as tview)} end
        val FemaleMember = class {}
          includes Staff
            as fn st => [Name = st.Name, Age = st.Age, Category = "staff"]
            where fn o => query(fn x => x.Sex = "female", o)
          includes Student
            as fn st => [Name = st.Name, Age = st.Age, Category = "student"]
            where fn o => query(fn x => x.Sex = "female", o)
        end
    ''')
    return sess


def test_female_member_type(s):
    assert s.typeof_str("FemaleMember") == \
        "class([Name = string, Age = int, Category = string])"


def test_sex_hidden_category_added(s):
    rows = s.eval_py("c-query(fn S => map(fn o => query(fn v => v, o), S), "
                     "FemaleMember)")
    assert all(set(r) == {"Name", "Age", "Category"} for r in rows)


def test_names_query(s):
    s.exec(f"val names = {NAMES}")
    assert s.eval_py("c-query(names, FemaleMember)") == ["Mia", "Ida"]


def test_category_by_source(s):
    rows = s.eval_py("c-query(fn S => map(fn o => query(fn v => v, o), S), "
                     "FemaleMember)")
    cats = {r["Name"]: r["Category"] for r in rows}
    # mia was collapsed to her first (staff) inclusion
    assert cats == {"Mia": "staff", "Ida": "student"}


def test_shared_object_appears_once(s):
    assert s.eval_py("c-query(fn S => size(S), FemaleMember)") == 2


def test_student_staff_intersection(s):
    s.exec('''
        val StudentStaff = class {}
          includes Staff, Student
            as fn p => [Name = p.1.Name, Age = p.1.Age, Sex = p.1.Sex,
                        Sal := extract(p.1, Salary),
                        Deg := extract(p.2, Degree)]
            where fn p => true
        end
    ''')
    assert s.typeof_str("StudentStaff") == (
        "class([Name = string, Age = int, Sex = string, Sal := int, "
        "Deg := string])")
    rows = s.eval_py("c-query(fn S => map(fn o => query(fn v => v, o), S), "
                     "StudentStaff)")
    assert [r["Name"] for r in rows] == ["Mia"]
    assert rows[0]["Sal"] == 5100 and rows[0]["Deg"] == "PhD"


def test_student_staff_update_reaches_raw(s):
    s.eval('c-query(fn S => map(fn o => '
           'query(fn v => update(v, Deg, "DSc"), o), S), StudentStaff)')
    assert s.eval_py("query(fn x => x.Degree, mia)") == "DSc"


def test_member_objects_share_identity_with_sources(s):
    assert s.eval_py(
        "c-query(fn S => exists(fn o => objeq(o, mia), S), FemaleMember)") \
        is True


def test_female_member_tracks_source_inserts(s):
    s.exec('val rhea = IDView([Name = "Rhea", Age = 29, Sex = "female", '
           'Salary := 100])')
    s.eval("insert((rhea as sview), Staff)")
    assert "Rhea" in s.eval_py(f"c-query({NAMES}, FemaleMember)")
    s.eval("delete((rhea as sview), Staff)")
    assert "Rhea" not in s.eval_py(f"c-query({NAMES}, FemaleMember)")

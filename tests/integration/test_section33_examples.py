"""Section 3.3 worked examples, outputs pinned to the paper's numbers."""

import pytest

from repro import Session


@pytest.fixture(scope="module")
def s():
    sess = Session()
    sess.exec('''
        val joe = IDView([Name = "Joe", BirthYear = 1955,
                          Salary := 2000, Bonus := 5000])
        val joe_view = (joe as fn x => [Name = x.Name,
                                        Age = This_year() - x.BirthYear,
                                        Income = x.Salary,
                                        Bonus := extract(x, Bonus)])
        fun Annual_Income p = (p.Income) * 12 + p.Bonus
    ''')
    return sess


def test_joe_type(s):
    assert s.typeof_str("joe") == \
        "obj([Name = string, BirthYear = int, Salary := int, Bonus := int])"


def test_joe_view_type(s):
    # renaming, hiding, computed attribute and access restriction
    assert s.typeof_str("joe_view") == \
        "obj([Name = string, Age = int, Income = int, Bonus := int])"


def test_same_identity(s):
    assert s.eval_py("objeq(joe, joe_view)") is True


def test_annual_income_type(s):
    assert s.typeof_str("Annual_Income") == \
        "forall t1::[[Income = int, Bonus = int]]. t1 -> int"


def test_annual_income_is_29000(s):
    assert s.eval_py("query(Annual_Income, joe_view)") == 29000


def test_income_not_updatable_through_view(s):
    from repro.errors import KindError
    with pytest.raises(KindError):
        s.typeof("query(fn x => update(x, Income, 0), joe_view)")


def test_birthyear_hidden(s):
    from repro.errors import KindError
    with pytest.raises(KindError):
        s.typeof("query(fn x => x.BirthYear, joe_view)")


def test_adjust_bonus_updates_through_view(s):
    s.exec("val adjustBonus = fn p => "
           "query(fn x => update(x, Bonus, x.Income * 3), p)")
    assert s.typeof_str("adjustBonus") == \
        "forall t1::[[Income = int, Bonus := int]]. obj(t1) -> unit"
    s.eval("adjustBonus joe_view")
    # the paper's resulting record
    assert s.eval_py("query(fn x => x, joe_view)") == {
        "Name": "Joe", "Age": 39, "Income": 2000, "Bonus": 6000}


def test_update_reflected_in_raw_object(s):
    # "query(fn x => x, joe)" after the bonus adjustment
    assert s.eval_py("query(fn x => x, joe)") == {
        "Name": "Joe", "BirthYear": 1955, "Salary": 2000, "Bonus": 6000}


def test_wealthy_applies_to_any_compatible_object_set(s):
    s.exec('''
        fun wealthy S =
          select as fn x => [Name = x.Name, Age = x.Age]
          from S
          where fn x => query(Annual_Income, x) > 100000
    ''')
    s.exec('''
        val Employees =
          {IDView([Name = "E1", Age = 50, Income = 10000, Bonus = 0]),
           IDView([Name = "E2", Age = 25, Income = 1000, Bonus = 500])}
    ''')
    out = s.eval_py("map(fn o => query(fn v => v, o), wealthy Employees)")
    assert [(r["Name"], r["Age"]) for r in out] == [("E1", 50)]
    # result objects share identity with the originals
    assert s.eval_py(
        "exists(fn o => query(fn v => v.Name = \"E1\", o), "
        "wealthy Employees)") is True

"""Every example script runs clean (they contain their own assertions)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    pathlib.Path(__file__).resolve().parents[2].glob("examples/*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run([sys.executable, str(path)],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr


def test_all_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "female_member.py", "mutual_sharing.py",
            "view_update_propagation.py", "university_db.py",
            "access_control.py"} <= names

"""Figure 7: the paper's mutually recursive Staff/Student/FemaleMember."""

import pytest

from repro import Session

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"
EXTENT = "fn S => map(fn o => query(fn v => v, o), S)"

FIG7 = '''
val Staff = class {ann}
  includes FemaleMember
    as fn f => [Name = f.Name, Age = f.Age, Sex = "female"]
    where fn f => query(fn x => x.Category = "staff", f)
end
and Student = class {}
  includes FemaleMember
    as fn f => [Name = f.Name, Age = f.Age, Sex = "female"]
    where fn f => query(fn x => x.Category = "student", f)
end
and FemaleMember = class {}
  includes Staff
    as fn st => [Name = st.Name, Age = st.Age, Category = "staff"]
    where fn st => query(fn x => x.Sex = "female", st)
  includes Student
    as fn st => [Name = st.Name, Age = st.Age, Category = "student"]
    where fn st => query(fn x => x.Sex = "female", st)
end
'''


@pytest.fixture()
def s():
    sess = Session()
    sess.exec('val ann = IDView([Name = "Ann", Age = 30, Sex = "female"])')
    sess.exec(FIG7)
    return sess


def test_initial_extents(s):
    assert s.eval_py(f"c-query({NAMES}, Staff)") == ["Ann"]
    assert s.eval_py(f"c-query({NAMES}, Student)") == []
    assert s.eval_py(f"c-query({NAMES}, FemaleMember)") == ["Ann"]


def test_types(s):
    assert s.typeof_str("Staff") == \
        "class([Name = string, Age = int, Sex = string])"
    assert s.typeof_str("FemaleMember") == \
        "class([Name = string, Age = int, Category = string])"


def test_female_member_view_of_ann(s):
    rows = s.eval_py(f"c-query({EXTENT}, FemaleMember)")
    assert rows == [{"Name": "Ann", "Age": 30, "Category": "staff"}]


def test_insert_into_female_member_reaches_staff(s):
    s.exec('val eve = (IDView([Name = "Eve", Age = 26, Role = "staff"]) '
           'as fn x => [Name = x.Name, Age = x.Age, Category = x.Role])')
    s.eval("insert(eve, FemaleMember)")
    staff = s.eval_py(f"c-query({EXTENT}, Staff)")
    eve_row = next(r for r in staff if r["Name"] == "Eve")
    assert eve_row["Sex"] == "female"  # the Staff view of an FM object
    assert s.eval_py(f"c-query({NAMES}, Student)") == []


def test_insert_student_category(s):
    s.exec('val ada = (IDView([Name = "Ada", Age = 21, Role = "student"]) '
           'as fn x => [Name = x.Name, Age = x.Age, Category = x.Role])')
    s.eval("insert(ada, FemaleMember)")
    assert s.eval_py(f"c-query({NAMES}, Student)") == ["Ada"]
    assert s.eval_py(f"c-query({NAMES}, Staff)") == ["Ann"]


def test_no_duplicates_through_the_cycle(s):
    # ann flows Staff -> FemaleMember; the cycle must not duplicate her
    assert s.eval_py("c-query(fn S => size(S), FemaleMember)") == 1
    assert s.eval_py("c-query(fn S => size(S), Staff)") == 1


def test_identity_preserved_around_the_cycle(s):
    assert s.eval_py(
        "c-query(fn S => exists(fn o => objeq(o, ann), S), FemaleMember)") \
        is True


def test_extent_calls_bounded(s):
    s.metrics.reset()
    s.eval(f"c-query({NAMES}, FemaleMember)")
    assert s.metrics.extent_calls <= 20

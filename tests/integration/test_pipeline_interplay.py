"""Cross-feature interplay: translations, globals, prepare, explain.

These tests exercise combinations the per-feature suites don't: compiled
(translated) programs running against session-bound globals, prepared
queries over translated code, and tracing through the compiled forms.
"""

import pytest

from repro import Session
from repro.core.infer import infer
from repro.lang.pyconv import value_to_python

NAMES = "fn S => map(fn o => query(fn v => v.Name, o), S)"


@pytest.fixture()
def s():
    sess = Session()
    sess.exec('val mia = IDView([Name = "Mia", Sex = "f"])')
    sess.exec("val Base = class {mia} end")
    return sess


def test_translated_program_runs_against_globals(s):
    """A translation of an expression referencing session globals is NOT
    evaluable directly (the globals hold native objects/classes, not the
    pair encoding) — the compilation unit is a closed program."""
    src = f"c-query({NAMES}, Base)"
    core = s.translate_full(src)
    # typechecking the open translated term fails: Base has type
    # class(...) in the environment, but the translation expects the
    # record encoding.
    with pytest.raises(Exception):
        infer(core, s.type_env, level=1)


def test_translated_closed_program_is_self_contained(s):
    src = ('let m = IDView([Name = "M"]) in '
           "let B = class {m} end in "
           f"c-query({NAMES}, B) end end")
    core = s.translate_full(src)
    infer(core, s.type_env, level=1)
    out = value_to_python(s.machine.eval(core, s.runtime_env), s.machine)
    assert out == ["M"]


def test_prepared_query_over_class_pipeline(s):
    s.exec("val Derived = class {} includes Base "
           "as fn x => [Name = x.Name] "
           'where fn o => query(fn v => v.Sex = "f", o) end')
    q = s.prepare(f"c-query({NAMES}, Derived)")
    assert q.run_py() == ["Mia"]
    s.exec('val zoe = (IDView([Name = "Zoe", Sex = "f"]) '
           "as fn x => [Name = x.Name, Sex = x.Sex])")
    s.eval("insert(zoe, Base)")
    assert q.run_py() == ["Mia", "Zoe"]


def test_explain_traces_prepared_queries(s):
    from repro.lang.explain import Tracer
    q = s.prepare(f"c-query({NAMES}, Base)")
    tracer = Tracer()
    s.machine.tracer = tracer
    try:
        q()
    finally:
        s.machine.tracer = None
    assert any(r.kind == "extent" for r in tracer.roots)


def test_ascription_with_prepared_query(s):
    q = s.prepare("(c-query(fn S => size(S), Base)) : int")
    assert q.run_py() == 1


def test_builders_and_surface_interoperate(s):
    from repro.lang import builders as B
    term = B.cquery(B.lam("S", lambda S: B.size(S)), B.var("Base"))
    from repro.eval.values import VInt
    out = s.eval_term(term.term)
    assert isinstance(out, VInt) and out.value == 1


def test_catalog_and_raw_session_share_state():
    from repro.db.catalog import Catalog
    cat = Catalog()
    cat.new_object("a", Name="A")
    cat.define_class("C", own=["a"])
    # drop to the raw session: the catalog's class is a normal binding
    assert cat.session.eval_py(
        f"c-query({NAMES}, C)") == ["A"]
    cat.session.eval("insert((IDView([Name = \"B\", X = 1]) "
                     "as fn x => [Name = x.Name]), C)")
    assert [r["Name"] for r in cat.extent("C")] == ["A", "B"]


def test_same_view_mode_with_translated_code():
    s = Session(object_union="same-view")
    src = ('let o = IDView([Name = "n"]) in '
           "size(union({o}, {o})) end")
    core = s.translate_full(src)
    infer(core, s.type_env, level=1)
    out = value_to_python(s.machine.eval(core, s.runtime_env), s.machine)
    assert out == 1  # same pair value: no view conflict

"""Type ascription ``(e : tau)`` — a reproduction extension.

Ascribed types are ground; inference unifies them against the expression's
(principal) type, so an ascription documents and *checks* a signature.
"""

import pytest

from repro.core import terms as T
from repro.errors import ParseError, UnificationError
from repro.syntax.parser import parse_expression
from tests.conftest import typeof


def test_parse_ascription():
    e = parse_expression("1 : int")
    assert isinstance(e, T.Ascribe)


def test_basic_ascriptions():
    assert typeof("1 : int") == "int"
    assert typeof('"s" : string') == "string"
    assert typeof("{1} : {int}") == "{int}"
    assert typeof("(fn x => x + 1) : int -> int") == "int -> int"


def test_record_type_ascription():
    assert typeof("[A = 1, B := true] : [A = int, B := bool]") == \
        "[A = int, B := bool]"


def test_obj_and_class_ascription():
    assert typeof("IDView([A = 1]) : obj([A = int])") == "obj([A = int])"
    assert typeof("class {IDView([A = 1])} end : class([A = int])") == \
        "class([A = int])"


def test_function_type_right_assoc():
    assert typeof("(fn x => fn y => x + y) : int -> int -> int") == \
        "int -> int -> int"


def test_wrong_ascription_rejected():
    with pytest.raises(UnificationError):
        typeof("1 : bool")
    with pytest.raises(UnificationError):
        typeof("[A = 1] : [A = bool]")


def test_mutability_mismatch_rejected():
    with pytest.raises(UnificationError):
        typeof("[A = 1] : [A := int]")


def test_ascription_narrows_polymorphism():
    # {} : {int} pins the element type
    assert typeof("union({} : {int}, {})") == "{int}"


def test_ascription_cannot_widen():
    # a monomorphic expression cannot be ascribed an unrelated type
    with pytest.raises(UnificationError):
        typeof("(fn x => x + 1) : bool -> bool")


def test_parenthesized_type():
    assert typeof("(fn f => f 1) : (int -> int) -> int") == \
        "(int -> int) -> int"


def test_unknown_type_name_rejected():
    with pytest.raises(ParseError):
        parse_expression("1 : banana")


def test_ascription_in_record_field():
    assert typeof("[A = (1 : int)]") == "[A = int]"


def test_ascription_evaluates_transparently(session):
    assert session.eval_py("(21 : int) * 2") == 42


def test_ascription_is_erased_by_translation(session):
    term = session.translate_full(
        "query(fn x => x.A, IDView([A = 1]) : obj([A = int]))")

    def no_ascribe(t):
        assert not isinstance(t, T.Ascribe)
        for sub in T.iter_subterms(t):
            no_ascribe(sub)

    no_ascribe(term)


def test_ascription_checked_before_translation(session):
    with pytest.raises(UnificationError):
        session.translate_full.__self__.eval(
            "query(fn x => x.A, IDView([A = 1]) : obj([A = bool]))")


def test_ascription_pretty_prints(session):
    text = repr(parse_expression("1 : int"))
    assert text == "(1 : int)"
    assert isinstance(parse_expression(text), T.Ascribe)


def test_value_restriction_interacts(session):
    # ascribing a lambda keeps it a syntactic value
    session.exec("val f = (fn x => x) : int -> int")
    assert session.eval_py("f 7") == 7

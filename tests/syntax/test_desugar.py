"""The fun-group desugaring (Section 2's fix+let+record encoding)."""

import pytest

from repro import Session
from repro.core import terms as T
from repro.syntax.desugar import FunBinding, desugar_fun_group


def test_single_binding_is_fix_of_lambda():
    out = desugar_fun_group(
        [FunBinding("f", ["x"], T.Var("x"))], T.Var("f"))
    assert isinstance(out, T.Let)
    assert isinstance(out.bound, T.Fix)
    assert isinstance(out.bound.body, T.Lam)


def test_single_binding_is_nonexpansive():
    from repro.core.infer import is_nonexpansive
    out = desugar_fun_group(
        [FunBinding("f", ["x", "y"], T.Var("x"))], T.Var("f"))
    assert is_nonexpansive(out.bound)  # so it let-generalizes


def test_binding_requires_parameters():
    with pytest.raises(ValueError):
        FunBinding("f", [], T.Var("x"))


def test_mutual_group_builds_record_fix():
    out = desugar_fun_group(
        [FunBinding("f", ["x"], T.App(T.Var("g"), T.Var("x"))),
         FunBinding("g", ["y"], T.Var("y"))],
        T.Var("f"))
    # outermost: let <rec> = fix <rec>. [...] in ...
    assert isinstance(out, T.Let)
    assert isinstance(out.bound, T.Fix)
    assert isinstance(out.bound.body, T.RecordExpr)
    labels = [f.label for f in out.bound.body.fields]
    assert labels == ["f", "g"]


def test_mutual_group_rebinds_inside_first_lambda():
    """The record must not be dereferenced before it exists: the name
    rebindings live under the outermost parameter lambda."""
    out = desugar_fun_group(
        [FunBinding("f", ["x"], T.Var("g")),
         FunBinding("g", ["y"], T.Var("f"))],
        T.Var("f"))
    field = out.bound.body.fields[0]
    assert isinstance(field.expr, T.Lam)          # fn x =>
    assert isinstance(field.expr.body, T.Let)     # let f = R.f in ...


def test_mutual_group_runs():
    s = Session()
    s.exec("""
        fun is_even n = if n < 1 then true else is_odd (n - 1)
        and is_odd n = if n < 1 then false else is_even (n - 1)
    """)
    assert s.eval_py("is_even 100") is True
    assert s.eval_py("is_odd 101") is True


def test_three_way_mutual_recursion():
    s = Session()
    s.exec("""
        fun red n = if n < 1 then "red" else green (n - 1)
        and green n = if n < 1 then "green" else blue (n - 1)
        and blue n = if n < 1 then "blue" else red (n - 1)
    """)
    assert s.eval_py("red 0") == "red"
    assert s.eval_py("red 1") == "green"
    assert s.eval_py("red 2") == "blue"
    assert s.eval_py("red 3") == "red"


def test_multi_parameter_mutual_functions():
    s = Session()
    s.exec("""
        fun ack m n = if m < 1 then n + 1
                      else if n < 1 then ack (m - 1) 1
                      else ack (m - 1) (ack m (n - 1))
    """)
    assert s.eval_py("ack 2 3") == 9


def test_let_fun_form():
    s = Session()
    assert s.eval_py(
        "let fun double x = x * 2 and triple x = x * 3 "
        "in double (triple 2) end") == 12

"""Pretty printing: type/kind/scheme notation and term round-trips."""

import pytest

from repro.core.types import (BOOL, FieldReq, FieldType, INT, KRecord,
                              STRING, TClass, TFun, TLval, TObj, TRecord,
                              TSet, TVar, TypeScheme, U, UNIT)
from repro.syntax.parser import parse_expression
from repro.syntax.pretty import (pretty_kind, pretty_scheme, pretty_term,
                                 pretty_type)


def test_base_types():
    assert pretty_type(INT) == "int"
    assert pretty_type(UNIT) == "unit"


def test_function_type_right_assoc():
    assert pretty_type(TFun(INT, TFun(BOOL, STRING))) == \
        "int -> bool -> string"


def test_function_domain_parenthesized():
    assert pretty_type(TFun(TFun(INT, INT), BOOL)) == "(int -> int) -> bool"


def test_set_obj_class_lval():
    assert pretty_type(TSet(INT)) == "{int}"
    assert pretty_type(TObj(TRecord({"a": FieldType(INT, False)}))) == \
        "obj([a = int])"
    assert pretty_type(TClass(TRecord({"a": FieldType(INT, True)}))) == \
        "class([a := int])"
    assert pretty_type(TLval(INT)) == "L(int)"


def test_record_type_mutability_markers():
    t = TRecord({"a": FieldType(INT, False), "b": FieldType(BOOL, True)})
    assert pretty_type(t) == "[a = int, b := bool]"


def test_kind_printing():
    assert pretty_kind(U) == "U"
    k = KRecord({"x": FieldReq(INT, True)})
    assert pretty_kind(k) == "[[x := int]]"


def test_scheme_printing_with_kinds():
    v = TVar(0, KRecord({"f": FieldReq(INT, False)}))
    s = TypeScheme([v], TFun(v, INT))
    assert pretty_scheme(s) == "forall t1::[[f = int]]. t1 -> int"


def test_var_naming_is_stable_within_one_printing():
    a, b = TVar(0), TVar(0)
    s = TypeScheme([a, b], TFun(a, TFun(b, a)))
    assert pretty_scheme(s) == "forall t1::U. forall t2::U. t1 -> t2 -> t1"


ROUND_TRIP_SOURCES = [
    "42",
    '"hi"',
    "true",
    "()",
    "fn x => x + 1",
    "[A = 1, B := 2]",
    "{1, 2, 3}",
    "let x = 1 in x end",
    "if a then b else c",
    "fix f. fn n => f n",
    "IDView([A = 1])",
    "(o as fn x => [B = x.A])",
    "query(fn x => x.A, o)",
    "fuse(a, b)",
    "relobj(l = a, r = b)",
    "update(r, l, 5)",
    "[A = extract(r, S)]",
    "c-query(f, C)",
    "insert(o, C)",
    "delete(o, C)",
    "class {a} include B as f where p end",
    "prod(s1, s2)",
    "x.a.b",
    "f a b",
    "1 + 2 * 3",
]


@pytest.mark.parametrize("src", ROUND_TRIP_SOURCES)
def test_pretty_parse_round_trip(src):
    """pretty(parse(src)) reparses to a term that pretty-prints the same."""
    term = parse_expression(src)
    text = pretty_term(term)
    reparsed = parse_expression(text)
    assert pretty_term(reparsed) == text


def test_let_classes_printing():
    term = parse_expression(
        "let A = class {} includes B as f where p end "
        "and B = class {} end in A end")
    text = pretty_term(term)
    assert "A = class" in text and "and B = class" in text
    assert pretty_term(parse_expression(text)) == text


def test_string_escaping():
    term = parse_expression(r'"say \"hi\""')
    assert pretty_term(term) == r'"say \"hi\""'


def test_infix_rendering():
    assert pretty_term(parse_expression("1 + 2")) == "1 + 2"
    assert pretty_term(parse_expression("a < b")) == "a < b"


def test_value_printing_matches_input_notation(session):
    assert session.show('[N = "x", M := {1, 2}]') == '[N = "x", M := {1, 2}]'

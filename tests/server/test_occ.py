"""Unit tests for the OCC layer: latches, read validation, rollback."""

import pytest

from repro.errors import ConflictError
from repro.server.occ import LatchTable, OCCTransaction


class FakeLoc:
    """Just enough of a Location for the OCC bookkeeping."""

    __slots__ = ("id", "value", "version")

    def __init__(self, id, value, version=0):
        self.id = id
        self.value = value
        self.version = version


class FakeClass:
    __slots__ = ("oid", "own", "version")

    def __init__(self, oid, own=(), version=0):
        self.oid = oid
        self.own = list(own)
        self.version = version


@pytest.fixture()
def latches():
    return LatchTable()


def test_did_read_records_first_version_only(latches):
    txn = OCCTransaction(latches)
    loc = FakeLoc(0, "a", version=7)
    txn.did_read(loc)
    loc.version = 9
    txn.did_read(loc)  # later sighting must not overwrite the first
    assert txn.reads[id(loc)] == (loc, 7)


def test_validate_passes_when_versions_unchanged(latches):
    txn = OCCTransaction(latches)
    loc = FakeLoc(0, "a", version=3)
    txn.did_read(loc)
    txn.validate()


def test_validate_raises_on_stale_read(latches):
    txn = OCCTransaction(latches)
    loc = FakeLoc(0, "a", version=3)
    txn.did_read(loc)
    loc.version = 4  # a concurrent commit bumped it
    with pytest.raises(ConflictError):
        txn.validate()


def test_write_write_conflict_is_immediate(latches):
    t1, t2 = OCCTransaction(latches), OCCTransaction(latches)
    loc = FakeLoc(0, "a")
    t1.will_write(loc)
    with pytest.raises(ConflictError):
        t2.will_write(loc)
    # The latch outlives further statements until t1 finishes...
    with pytest.raises(ConflictError):
        t2.will_write(loc)
    t1.finalize()
    # ...after which t2 acquires it freely.
    t2.will_write(loc)


def test_read_then_write_upgrade_validates_at_write_time(latches):
    # The lost-update window: T reads, someone else commits a write, T
    # writes.  The latch only protects from the write on, so the upgrade
    # itself must detect the stale read.
    txn = OCCTransaction(latches)
    loc = FakeLoc(0, 100, version=5)
    txn.did_read(loc)
    loc.version = 6
    loc.value = 101
    with pytest.raises(ConflictError):
        txn.will_write(loc)


def test_self_written_location_is_exempt_from_validation(latches):
    txn = OCCTransaction(latches)
    loc = FakeLoc(0, 100, version=5)
    txn.did_read(loc)
    txn.will_write(loc)
    loc.value = 101
    loc.version = 6  # our own write bumped the stamp
    txn.validate()  # exempt: the latch proves nobody else touched it


def test_rollback_restores_value_and_version(latches):
    txn = OCCTransaction(latches)
    loc = FakeLoc(0, 100, version=5)
    txn.will_write(loc)
    loc.value = 999
    loc.version = 6
    txn.rollback()
    assert (loc.value, loc.version) == (100, 5)
    # Latch released: a new transaction can write immediately.
    OCCTransaction(latches).will_write(loc)


def test_extent_tracking_mirrors_locations(latches):
    t1, t2 = OCCTransaction(latches), OCCTransaction(latches)
    cls = FakeClass(1, own=["a"], version=2)
    t1.did_read_extent(cls)
    t2.will_write_extent(cls)
    old_own = cls.own
    cls.own = cls.own + ["b"]
    cls.version = 3
    # t1's extent read is now stale.
    with pytest.raises(ConflictError):
        t1.validate()
    t2.rollback()
    assert cls.own is old_own and cls.version == 2
    # After the rollback restored the version, t1 validates again.
    t1.validate()


def test_extent_read_then_write_upgrade(latches):
    txn = OCCTransaction(latches)
    cls = FakeClass(1, own=["a"], version=2)
    txn.did_read_extent(cls)
    cls.version = 3
    with pytest.raises(ConflictError):
        txn.will_write_extent(cls)

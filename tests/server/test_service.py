"""Integration tests for the Server: transactions, degradation, recovery."""

import threading
import time

import pytest

from repro import Budget
from repro.db.catalog import Catalog
from repro.errors import (ConflictError, EvalError, OverloadedError,
                          ReadOnlyError, ReproError)
from repro.server import Server, ServerConfig


@pytest.fixture()
def catalog():
    cat = Catalog()
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    cat.define_class("Emp", own=["joe"])
    return cat


@pytest.fixture()
def server(catalog):
    with Server(catalog) as s:
        yield s


def test_round_trip_statements(server):
    client = server.connect()
    assert client.extent("Emp") == [{"Name": "Joe", "Salary": 100}]
    client.update_object("joe", "Salary", 150)
    assert client.eval_py("query(fn x => x.Salary, joe)") == 150

    def mixed(txn):
        txn.insert("Emp", "amy")
        return sorted(r["Name"] for r in txn.extent("Emp"))

    assert client.run(mixed) == ["Amy", "Joe"]
    assert client.run(lambda txn: txn.query("Emp", "fn S => size(S)")) == 2
    client.run(lambda txn: txn.delete("Emp", "amy"))
    assert len(client.extent("Emp")) == 1


def test_transaction_rolls_back_all_statements(server, catalog):
    client = server.connect()

    def doomed(txn):
        txn.update_object("joe", "Salary", 999)
        txn.insert("Emp", "amy")
        raise EvalError("client-side failure after two statements")

    with pytest.raises(EvalError):
        client.run(doomed)
    # Both the store state and the catalog membership metadata rolled back.
    assert client.extent("Emp") == [{"Name": "Joe", "Salary": 100}]
    assert catalog.classes["Emp"].own == [("joe", None)]


def test_lost_update_is_detected_and_retried(server):
    client = server.connect()
    read_done = threading.Event()
    other_committed = threading.Event()
    attempts = []

    def slow_bump(txn):
        attempts.append(1)
        salary = txn.eval_py("query(fn x => x.Salary, joe)")
        if len(attempts) == 1:
            read_done.set()
            other_committed.wait(10)
        txn.update_object("joe", "Salary", salary + 1)
        return salary + 1

    req = server.submit(slow_bump)
    assert read_done.wait(10)
    client.run(lambda txn: txn.update_object(
        "joe", "Salary", txn.eval_py("query(fn x => x.Salary, joe)") + 1))
    other_committed.set()
    # The slow transaction's first attempt read 100; committing it would
    # lose the concurrent increment.  It must conflict, retry, and land
    # on 102.
    assert server.wait(req, timeout=10) == 102
    assert len(attempts) == 2
    assert server.stats.conflicts >= 1
    assert client.eval_py("query(fn x => x.Salary, joe)") == 102


def test_conflict_surfaces_after_retries_exhaust(catalog):
    from repro.server.retry import RetryPolicy
    config = ServerConfig(retry=RetryPolicy(
        max_attempts=2, base_delay=0.0001, max_delay=0.001))
    with Server(catalog, config=config) as server:
        started = threading.Event()
        block = threading.Event()

        def holder(txn):
            txn.update_object("joe", "Salary", 1)  # latches the location
            started.set()
            block.wait(10)

        req = server.submit(holder)
        assert started.wait(10)
        # Every attempt hits the held write latch; after max_attempts the
        # conflict surfaces to the client instead of retrying forever.
        with pytest.raises(ConflictError):
            server.connect().run(
                lambda txn: txn.update_object("joe", "Salary", 2))
        block.set()
        server.wait(req, timeout=10)


def test_full_queue_sheds_load(catalog):
    config = ServerConfig(workers=1, queue_size=1)
    with Server(catalog, config=config) as server:
        release = threading.Event()
        started = threading.Event()

        def blocker(txn):
            started.set()
            release.wait(10)

        held = server.submit(blocker)
        assert started.wait(10)
        queued = server.submit(lambda txn: None)  # fills the queue
        with pytest.raises(OverloadedError):
            server.submit(lambda txn: None)  # shed
        assert server.stats.shed == 1
        release.set()
        server.wait(held, timeout=10)
        server.wait(queued, timeout=10)


def test_request_timeout_abandons_the_request(server):
    release = threading.Event()

    def blocker(txn):
        release.wait(10)

    with pytest.raises(TimeoutError):
        server.call(blocker, timeout=0.05)
    release.set()
    # The server is still healthy afterwards.
    assert server.connect().eval_py("query(fn x => x.Salary, joe)") == 100


def test_deadline_expired_in_queue_is_shed_not_evaluated(catalog):
    config = ServerConfig(workers=1, queue_size=8)
    with Server(catalog, config=config) as server:
        release = threading.Event()
        started = threading.Event()

        def blocker(txn):
            started.set()
            release.wait(10)

        held = server.submit(blocker)
        assert started.wait(10)
        ran = []
        req = server.submit(lambda txn: ran.append(1),
                            budget=Budget(max_queue_wait=0.01))
        time.sleep(0.05)  # let the deadline die while queued
        release.set()
        with pytest.raises(OverloadedError):
            server.wait(req, timeout=10)
        assert ran == []  # shed without evaluating anything
        server.wait(held, timeout=10)
        assert server.stats.shed == 1


def test_wal_failures_trip_the_breaker_into_read_only(tmp_path):
    cat = Catalog(wal=str(tmp_path / "db.wal"))
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.define_class("Emp", own=["joe"])
    config = ServerConfig(breaker_threshold=2, breaker_cooldown=0.05)
    with Server(cat, config=config) as server:
        client = server.connect()
        healthy_append = cat.wal.append

        def dead_disk(op, args):
            raise OSError("injected: disk gone")

        cat.wal.append = dead_disk
        for _ in range(2):
            with pytest.raises(OSError):
                client.update_object("joe", "Salary", 1)
        # Failed commits rolled back: memory never ran ahead of the log.
        assert client.eval_py("query(fn x => x.Salary, joe)") == 100
        assert server.read_only
        assert server.stats.wal_failures == 2
        # Writes are rejected up front while open; reads still flow.
        with pytest.raises(ReadOnlyError):
            client.update_object("joe", "Salary", 2)
        assert server.stats.read_only_rejected == 1
        assert client.extent("Emp") == [{"Name": "Joe", "Salary": 100}]
        # Disk comes back; after the cooldown the half-open probe commits
        # and the breaker closes.
        cat.wal.append = healthy_append
        time.sleep(0.06)
        client.update_object("joe", "Salary", 3)
        assert server.breaker_state == "closed"
        assert not server.read_only
        assert client.eval_py("query(fn x => x.Salary, joe)") == 3


def test_server_recovers_from_wal_on_startup(tmp_path):
    wal = str(tmp_path / "db.wal")
    cat = Catalog(wal=wal)
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.define_class("Emp", own=["joe"])
    cat.update_object("joe", "Salary", 777)
    del cat  # "crash"

    with Server(wal=wal) as server:
        assert server.recovery is not None
        assert server.recovery.replayed == 3
        client = server.connect()
        assert client.extent("Emp") == [{"Name": "Joe", "Salary": 777}]
        # And the recovered server keeps appending to the same log.
        client.update_object("joe", "Salary", 778)
    with Server(wal=wal) as server:
        assert server.connect().extent("Emp") == [
            {"Name": "Joe", "Salary": 778}]


def test_execute_exclusive_runs_ddl(server):
    server.execute_exclusive(
        lambda cat: cat.define_class("Payroll", own=["joe", "amy"]))
    assert len(server.connect().extent("Payroll")) == 2


def test_close_fails_backlog_and_rejects_new_work(catalog):
    # No workers: everything submitted stays queued, so close() must fail
    # the whole backlog as shed load rather than losing it silently.
    server = Server(catalog, config=ServerConfig(workers=0, queue_size=8))
    backlog = [server.submit(lambda txn: None) for _ in range(3)]
    server.close()
    for req in backlog:
        with pytest.raises(OverloadedError):
            server.wait(req, timeout=1)
    assert server.stats.shed == 3
    with pytest.raises(RuntimeError):
        server.submit(lambda txn: None)


def test_errors_inside_transactions_are_repro_errors(server):
    client = server.connect()
    with pytest.raises(ReproError):
        client.exec("query(fn x => x.NoSuchField, joe)")
    # The session survives arbitrary client errors.
    assert client.eval_py("query(fn x => x.Salary, joe)") == 100

"""The static-interference fast path: admission, safety, consumers.

The regions analysis summarizes each submitted program; transactions
whose resolved footprints are provably disjoint from everything in
flight commit latch-free with no backward validation.  These tests pin
the admission table's invariants, the end-to-end engagement of the fast
path, and — crucially — that contention still never loses an update.
"""

import threading

import pytest

from repro.analysis.regions import FootprintSummary, SharingTracer
from repro.db.catalog import Catalog
from repro.errors import ConflictError
from repro.server import Server, ServerConfig
from repro.server.interference import (InterferenceTable, ResolvedFootprint,
                                       resolve_footprint)


# ---------------------------------------------------------------------------
# ResolvedFootprint / InterferenceTable units
# ---------------------------------------------------------------------------

def _fp(reads=(), writes=()):
    w = frozenset(writes)
    return ResolvedFootprint(frozenset(reads) | w, w)


def test_overlap_semantics():
    a = _fp(reads=[("loc", 1)], writes=[("loc", 2)])
    b = _fp(reads=[("loc", 2)])            # reads what a writes
    c = _fp(reads=[("loc", 9)], writes=[("loc", 1)])  # writes what a reads
    d = _fp(reads=[("loc", 7)], writes=[("loc", 8)])  # disjoint
    assert a.overlaps(b) and b.overlaps(a)
    assert a.overlaps(c) and c.overlaps(a)
    assert not a.overlaps(d) and not d.overlaps(a)
    # ⊤ overlaps everything; the empty footprint overlaps nothing.
    assert a.overlaps(None)
    empty = _fp()
    assert not empty.overlaps(a) and not a.overlaps(empty)
    assert not empty.overlaps(empty)


def test_table_licenses_disjoint_fast():
    table = InterferenceTable()
    assert table.admit(1, _fp(writes=[("loc", 1)])) is True
    assert table.admit(2, _fp(writes=[("loc", 2)])) is True
    assert len(table) == 2
    table.release(1)
    table.release(2)
    assert len(table) == 0
    table.release(99)  # releasing an unknown key is a no-op


def test_table_blocks_overlap_with_inflight_fast():
    table = InterferenceTable()
    assert table.admit(1, _fp(writes=[("loc", 1)])) is True
    with pytest.raises(ConflictError):
        table.admit(2, _fp(reads=[("loc", 1)]))
    # The rejected attempt was never registered.
    assert len(table) == 1
    with pytest.raises(ConflictError):
        table.admit(3, None)  # ⊤ overlaps the in-flight fast txn too
    table.release(1)
    assert table.admit(2, _fp(reads=[("loc", 1)])) is True


def test_table_dynamic_inflight_demotes_but_admits():
    table = InterferenceTable()
    # A ⊤ transaction is admitted (dynamically) and poisons the fast
    # path for everything that runs beside it — but blocks nothing.
    assert table.admit(1, None) is False
    assert table.admit(2, _fp(writes=[("loc", 5)])) is False
    assert len(table) == 2
    # Two dynamic overlapping attempts coexist: OCC validation decides.
    assert table.admit(3, _fp(reads=[("loc", 5)])) is False


def test_resolve_footprint_against_live_session():
    cat = Catalog()
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    session = cat.session

    fp = resolve_footprint(
        FootprintSummary(frozenset(["joe"]), frozenset(["joe"])), session)
    assert fp is not None and fp.writes and fp.writes <= fp.reads

    disjoint = resolve_footprint(
        FootprintSummary(frozenset(["amy"]), frozenset(["amy"])), session)
    assert disjoint is not None and not fp.overlaps(disjoint)

    # ⊤ write set, missing summary, unbound root: all resolve to None.
    assert resolve_footprint(
        FootprintSummary(frozenset(["joe"]), None), session) is None
    assert resolve_footprint(None, session) is None
    assert resolve_footprint(
        FootprintSummary(frozenset(["nope"]), frozenset()), session) is None

    pure = resolve_footprint(
        FootprintSummary(frozenset(), frozenset()), session)
    assert pure is not None and not pure.overlaps(fp)


# ---------------------------------------------------------------------------
# End-to-end: the server engages the fast path
# ---------------------------------------------------------------------------

def _catalog(n=4):
    cat = Catalog()
    for i in range(n):
        cat.new_object(f"e{i}", Name=f"e{i}", mutable={"Bonus": 0})
    cat.define_class("Emp", own=[f"e{i}" for i in range(n)])
    return cat


def test_disjoint_statements_commit_fast():
    with Server(_catalog()) as server:
        client = server.connect()
        for i in range(4):
            client.exec(f"query(fn x => update(x, Bonus, x.Bonus + 1), e{i})")
        client.update_object("e0", "Bonus", 42)
        assert client.eval_py("query(fn x => x.Bonus, e0)") == 42
        assert client.eval_py("query(fn x => x.Bonus, e3)") == 1
        stats = server.stats.snapshot()
        # Every statement above carried a bounded footprint and nothing
        # ran beside it: reads and single-object RMWs all go fast.
        assert stats["fast_commits"] == stats["committed"]
        assert stats["fast_commits"] >= 7


def test_opaque_python_body_stays_dynamic():
    with Server(_catalog()) as server:
        client = server.connect()
        client.run(lambda txn: txn.update_object("e1", "Bonus", 5))
        stats = server.stats.snapshot()
        assert stats["committed"] == 1
        assert stats["fast_commits"] == 0  # no static evidence, no fast path


def test_unbounded_footprint_falls_back_to_dynamic():
    with Server(_catalog()) as server:
        client = server.connect()
        # `map` applies a mutating lambda the analysis does not inline
        # through a builtin: the write set widens to ⊤ and the server
        # silently runs full OCC — imprecision costs speed, not safety.
        client.exec("c-query(fn S => map(fn x => "
                    "query(fn v => update(v, Bonus, 9), x), S), Emp)")
        assert client.eval_py("query(fn x => x.Bonus, e2)") == 9
        stats = server.stats.snapshot()
        assert stats["committed"] == 2
        assert stats["fast_commits"] == 1  # only the follow-up read


def test_static_interference_off_restores_old_behavior():
    cfg = ServerConfig(static_interference=False)
    with Server(_catalog(), config=cfg) as server:
        client = server.connect()
        for i in range(4):
            client.exec(f"query(fn x => update(x, Bonus, x.Bonus + 1), e{i})")
        stats = server.stats.snapshot()
        assert stats["committed"] == 4
        assert stats["fast_commits"] == 0


def test_contended_counter_never_loses_updates():
    """Overlapping fast-path candidates bounce at admission and retry;
    whatever mix of fast/dynamic/blocked attempts results, the counter
    must equal the number of increments that reported success."""
    cat = Catalog()
    cat.new_object("ctr", Name="counter", mutable={"Count": 0})
    threads, per = 8, 12
    successes = []
    with Server(cat) as server:
        def worker():
            client = server.connect()
            for _ in range(per):
                try:
                    client.exec(
                        "query(fn x => update(x, Count, x.Count + 1), ctr)")
                except ConflictError:
                    continue
                successes.append(1)
        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        final = server.connect().eval_py("query(fn x => x.Count, ctr)")
        stats = server.stats.snapshot()
    assert final == len(successes)
    assert final > 0
    # Everything that committed went through some admissible path.
    assert stats["committed"] == len(successes) + 1  # + the final read


def test_fast_and_dynamic_interleave_safely():
    """A dynamic (opaque) writer in flight demotes overlapping statements
    to dynamic OCC; totals still reconcile."""
    cat = Catalog()
    cat.new_object("ctr", Name="counter", mutable={"Count": 0})
    with Server(cat) as server:
        client = server.connect()
        entered = threading.Event()
        release = threading.Event()

        def slow_dynamic(txn):
            count = txn.eval_py("query(fn x => x.Count, ctr)")
            entered.set()
            release.wait(10)
            txn.update_object("ctr", "Count", count + 1)

        req = server.submit(slow_dynamic)
        assert entered.wait(10)
        # This overlapping statement cannot take the fast path while the
        # dynamic writer holds the counter in flight, but it can run.
        try:
            client.exec("query(fn x => update(x, Count, x.Count + 1), ctr)")
            exec_won = 1
        except ConflictError:
            exec_won = 0
        release.set()
        try:
            server.wait(req, timeout=10)
            slow_won = 1
        except ConflictError:
            slow_won = 0
        final = client.eval_py("query(fn x => x.Count, ctr)")
        assert final == exec_won + slow_won
        assert final >= 1


# ---------------------------------------------------------------------------
# The planner consumer: dead includes shrink the traced read set
# ---------------------------------------------------------------------------

def test_dead_include_skips_source_extent_reads():
    cat = Catalog()
    cat.new_object("a0", Name="A0", mutable={"N": 1})
    cat.new_object("b0", Name="B0", mutable={"N": 2})
    cat.define_class("B", own=["b0"])
    session = cat.session
    session.exec("val Dead = class {a0} includes B "
                 "as fn x => x where fn o => false end")
    session.exec("val Live = class {a0} includes B "
                 "as fn x => x where fn o => true end")
    b_oid = session._global_frame["B"].oid

    def traced_extent(name):
        tracer = SharingTracer()
        store = session.machine.store
        store.tracker = tracer
        try:
            session.eval_py(f"c-query(fn S => size(S), {name})")
        finally:
            store.tracker = None
        return tracer

    dead = traced_extent("Dead")
    live = traced_extent("Live")
    # The dead clause is skipped outright: B's extent is never consulted.
    assert b_oid not in dead.read_extents
    assert b_oid in live.read_extents
    assert len(dead.read_extents) < len(live.read_extents)

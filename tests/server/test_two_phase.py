"""Cross-shard two-phase commit: durable coordination records, in-doubt
recovery, the lane handshake, and the wire client's conflict backoff.

The crash-window × fault-point matrix itself lives in
``tests/runtime/test_faults.py`` (keyed off ``faults.registered_points()``
so a new ``2pc.*`` point cannot ship without coverage); this file pins the
record formats, the recovery doctor's resolutions, and the client-visible
behavior around them.
"""

import os
import random
import threading
import time

import pytest

from repro.analysis.partition import partition_workload
from repro.analysis.regions import FootprintSummary
from repro.analysis.workload import build_conflict_graph
from repro.db.catalog import Catalog, resolve_two_phase
from repro.db.wal import WriteAheadLog, read_wal
from repro.errors import ConflictError
from repro.runtime import faults
from repro.server import Server, ServerConfig
from repro.server.recover import recover
from repro.server.retry import RetryPolicy

RMW = "query(fn x => update(x, Salary, x.Salary + 1), {n})"
PAIR = frozenset({"joe", "amy"})
XFP = FootprintSummary(PAIR, PAIR)


def _catalog(tmp_path, names=("joe", "amy"), fsync=True):
    wal = str(tmp_path / "2pc.wal")
    cat = Catalog(wal=WriteAheadLog(wal, fsync=fsync))
    for n in names:
        cat.new_object(n, Name=n.title(), mutable={"Salary": 0})
    return cat, wal


def _plan(cat, names=("joe", "amy"), shards=2):
    graph = build_conflict_graph(
        {f"t_{n}": RMW.format(n=n) for n in names}, session=cat.session)
    return partition_workload(graph, shards=shards, session=cat.session)


def _set_both(value):
    def body(txn):
        txn.update_object("joe", "Salary", value)
        txn.update_object("amy", "Salary", value)
    return body


def _salaries(session, names=("joe", "amy")):
    return {n: session.eval_py(f"query(fn x => x.Salary, {n})")
            for n in names}


# -- the durable record sequence -------------------------------------------

def test_commit_writes_prepare_decide_ack(tmp_path):
    cat, wal = _catalog(tmp_path)
    with Server(cat, config=ServerConfig(partitions=_plan(cat))) as server:
        server.connect().run(_set_both(7), footprint=XFP)
        assert server.stats.snapshot()["two_phase_commits"] == 1
    records, torn = read_wal(wal)
    assert not torn
    assert [r["op"] for r in records] == \
        ["new_object", "new_object", "txn.prepare", "txn.decide", "txn.ack"]
    prepare, decide, ack = records[2], records[3], records[4]
    # The prepare's LSN is the transaction id; unique even across
    # restarts on the same log, since truncation empties it.
    assert decide["args"] == {"tid": prepare["lsn"], "outcome": "commit"}
    assert ack["args"] == {"tid": prepare["lsn"]}
    assert prepare["args"]["shards"] == [0, 1]
    assert prepare["args"]["staged"] == {"locations": 2, "extents": 0}
    assert [o["op"] for o in prepare["args"]["ops"]] == \
        ["update_object", "update_object"]


def test_single_shard_commit_stays_one_phase(tmp_path):
    cat, wal = _catalog(tmp_path)
    with Server(cat, config=ServerConfig(partitions=_plan(cat))) as server:
        server.connect().update_object("joe", "Salary", 3)
        assert server.stats.snapshot()["single_shard_commits"] == 1
    ops = [r["op"] for r in read_wal(wal)[0]]
    assert "txn.prepare" not in ops and "txn.decide" not in ops


# -- in-doubt resolution ----------------------------------------------------

_PREPARE_OPS = [
    {"op": "update_object",
     "args": {"object": "joe", "label": "Salary", "value": 99}},
    {"op": "update_object",
     "args": {"object": "amy", "label": "Salary", "value": 99}},
]


def _stage_in_doubt(tmp_path, decide=False, ack=False):
    """A WAL holding a prepare whose coordinator crashed mid-handshake."""
    cat, wal = _catalog(tmp_path)
    tid = cat.wal.append("txn.prepare", {
        "shards": [0, 1], "ops": _PREPARE_OPS,
        "staged": {"locations": 2, "extents": 0}})
    if decide:
        cat.wal.append("txn.decide", {"tid": tid, "outcome": "commit"})
    if ack:
        cat.wal.append("txn.ack", {"tid": tid})
    cat.wal.close()
    return wal, tid


def test_prepare_without_decide_is_presumed_abort(tmp_path):
    wal, tid = _stage_in_doubt(tmp_path)
    cat, report = recover(wal)
    assert _salaries(cat.session) == {"joe": 0, "amy": 0}
    assert report.in_doubt == [{"tid": tid, "shards": [0, 1],
                                "staged": {"locations": 2, "extents": 0},
                                "resolution": "abort"}]
    assert f"tid {tid} -> abort" in report.summary()
    cat.wal.close()


def test_decide_without_ack_replays_idempotently(tmp_path):
    wal, tid = _stage_in_doubt(tmp_path, decide=True)
    cat, report = recover(wal)
    assert _salaries(cat.session) == {"joe": 99, "amy": 99}
    assert [t["resolution"] for t in report.in_doubt] == ["commit"]
    cat.wal.close()
    # Recovery is idempotent: a second doctor pass over the same log
    # reconciles the already-applied ops instead of re-applying them.
    cat2, report2 = recover(wal)
    assert _salaries(cat2.session) == {"joe": 99, "amy": 99}
    assert [t["resolution"] for t in report2.in_doubt] == ["commit"]
    cat2.wal.close()


def test_acked_commit_is_not_in_doubt(tmp_path):
    wal, _tid = _stage_in_doubt(tmp_path, decide=True, ack=True)
    cat, report = recover(wal)
    assert _salaries(cat.session) == {"joe": 99, "amy": 99}
    assert report.in_doubt == []
    cat.wal.close()


def test_catalog_recover_resolves_two_phase(tmp_path):
    # The blind-replay path must not choke on (or half-apply) 2PC
    # records either: it shares the same resolution pass.
    wal, _tid = _stage_in_doubt(tmp_path, decide=True)
    cat = Catalog.recover(wal)
    assert _salaries(cat.session) == {"joe": 99, "amy": 99}
    cat.wal.close()
    sub = tmp_path / "abort-case"
    sub.mkdir()
    wal2, _tid = _stage_in_doubt(sub, decide=False)
    cat2 = Catalog.recover(wal2)
    assert _salaries(cat2.session) == {"joe": 0, "amy": 0}
    cat2.wal.close()


def test_resolve_two_phase_orders_commit_at_decide_position():
    records = [
        {"lsn": 1, "op": "txn.prepare",
         "args": {"shards": [0, 1], "ops": _PREPARE_OPS,
                  "staged": {"locations": 2, "extents": 0}}},
        {"lsn": 2, "op": "update_object",
         "args": {"object": "joe", "label": "Salary", "value": 5}},
        {"lsn": 3, "op": "txn.decide", "args": {"tid": 1,
                                                "outcome": "commit"}},
        {"lsn": 4, "op": "txn.ack", "args": {"tid": 1}},
    ]
    resolved, in_doubt = resolve_two_phase(records)
    # The decide's log position is the serialization order: the
    # interleaved single-shard commit replays *before* the 2PC group.
    assert [(r["op"], r["lsn"]) for r in resolved] == \
        [("update_object", 2), ("txn", 3)]
    assert resolved[1]["args"]["ops"] == _PREPARE_OPS
    assert in_doubt == []


def test_server_startup_reports_resolved_in_doubt(tmp_path):
    wal, tid = _stage_in_doubt(tmp_path, decide=True)
    with Server(wal=wal) as server:
        assert server.recovery is not None
        assert [t["tid"] for t in server.recovery.in_doubt] == [tid]
        assert server.stats.snapshot()["in_doubt_resolved"] == 1
        assert _salaries(server.session) == {"joe": 99, "amy": 99}


# -- torn tail after a prepare (satellite) ----------------------------------

def test_torn_group_commit_after_prepare_keeps_the_prepare(tmp_path):
    cat, wal = _catalog(tmp_path)
    cat.wal.append("txn.prepare", {
        "shards": [0, 1], "ops": _PREPARE_OPS,
        "staged": {"locations": 2, "extents": 0}})
    cat.wal.append("txn", {"ops": [
        {"op": "update_object",
         "args": {"object": "joe", "label": "Salary", "value": 42}}]})
    cat.wal.close()
    # Tear the tail *inside* the group-commit record that follows the
    # prepare — the crash window of a flush that never finished.
    size = os.path.getsize(wal)
    with open(wal, "ab") as f:
        f.truncate(size - 10)
    records, torn = read_wal(wal)
    assert torn
    assert records[-1]["op"] == "txn.prepare"
    cat2, report = recover(wal)
    assert report.torn_tail
    # The torn group is dropped; the surviving prepare resolves by
    # presumed abort — nothing half-applies.
    assert _salaries(cat2.session) == {"joe": 0, "amy": 0}
    assert [t["resolution"] for t in report.in_doubt] == ["abort"]
    cat2.wal.close()


# -- lane handshake under contention ----------------------------------------

def test_cross_shard_commits_are_atomic_under_lane_traffic(tmp_path):
    # Single-shard lane traffic hammers both participants while
    # cross-shard transactions set joe = amy = k through the handshake;
    # the pair must never be observed torn by another transaction.
    cat, wal = _catalog(tmp_path, fsync=False)
    cfg = ServerConfig(workers=2, partitions=_plan(cat),
                       retry=RetryPolicy(max_attempts=12,
                                         base_delay=0.0005, max_delay=0.01))
    with Server(cat, config=cfg) as server:
        client = server.connect()
        stop = threading.Event()
        errors = []

        def lane_noise(name):
            fp = FootprintSummary(frozenset({name}), frozenset({name}))
            try:
                while not stop.is_set():
                    client.run(
                        lambda txn: txn.eval_py(
                            f"query(fn x => x.Salary, {name})"),
                        footprint=fp, timeout=60)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def check_pair(txn):
            vals = [txn.eval_py(f"query(fn x => x.Salary, {n})")
                    for n in ("joe", "amy")]
            assert vals[0] == vals[1], f"torn cross-shard state: {vals}"

        noise = [threading.Thread(target=lane_noise, args=(n,))
                 for n in ("joe", "amy")]
        for t in noise:
            t.start()
        try:
            for k in range(1, 21):
                client.run(_set_both(k), footprint=XFP, timeout=60)
                client.run(check_pair, footprint=XFP, timeout=60)
        finally:
            stop.set()
            for t in noise:
                t.join(timeout=30)
        assert errors == []
        assert server.stats.snapshot()["two_phase_commits"] >= 40
        assert _salaries(cat.session) == {"joe": 20, "amy": 20}


# -- the pooled client backs off on lane-escalation conflicts (satellite) ---

class _RecordingPolicy(RetryPolicy):
    """Records every (exception, computed backoff) the client sleeps on."""

    def __init__(self):
        from repro.client import DEFAULT_RETRY_ON
        super().__init__(max_attempts=40, base_delay=0.002,
                         max_delay=0.05, retry_on=DEFAULT_RETRY_ON)
        self.seen = []

    def backoff_for(self, exc, attempt, rng):
        delay = super().backoff_for(exc, attempt, rng)
        self.seen.append((exc, delay))
        # Honor the envelope decision (hint vs jitter) but keep the
        # test fast.
        return min(delay, 0.02)


def test_wire_client_backs_off_on_cross_shard_conflict(tmp_path):
    from repro.client import Client
    from repro.server.protocol import ProtocolServer

    cat, wal = _catalog(tmp_path, names=("joe", "amy", "zed"), fsync=False)
    plan = _plan(cat)  # joe/amy only: zed stays outside every shard
    with Server(cat, config=ServerConfig(partitions=plan)) as server:
        started = threading.Event()
        release = threading.Event()

        def blocker(txn):
            started.set()
            assert release.wait(timeout=30)
            return txn.eval_py("query(fn x => x.Salary, zed)")

        # A fast-path global transaction holding joe's footprint: the
        # cross-shard commit below overlaps it at admission and must be
        # turned away with a retriable, *hinted* ConflictError.
        blocker_req = server.submit(
            blocker, footprint=FootprintSummary(frozenset({"joe", "zed"}),
                                                frozenset({"zed"})))
        assert started.wait(timeout=30)
        policy = _RecordingPolicy()
        with ProtocolServer(server) as front:
            client = Client(*front.address, retry=policy)
            try:
                releaser = threading.Timer(0.2, release.set)
                releaser.start()
                client.exec("query(fn x => update(x, Salary, "
                            "query(fn y => y.Salary, amy) + 1), joe)")
            finally:
                release.set()
                client.close()
        server.wait(blocker_req, timeout=30)
        conflicts = [(exc, delay) for exc, delay in policy.seen
                     if isinstance(exc, ConflictError)]
        assert conflicts, "the cross-shard commit never hit the blocker"
        for exc, delay in conflicts:
            # The server's drain-estimate hint survived the wire and the
            # policy backed off on it — no hot retry.
            assert exc.retry_after is not None and exc.retry_after > 0
            assert delay >= exc.retry_after
        assert server.stats.snapshot()["interference_blocked"] >= 1
        assert _salaries(cat.session)["joe"] == 1


# -- chaos: prepare/decide faults + worker kills under 16 clients -----------

THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "16"))
TXNS_PER_THREAD = int(os.environ.get("REPRO_STRESS_TXNS", "50")) // 5


@pytest.mark.slow
def test_stress_two_phase_chaos(tmp_path):
    """The 2pc-chaos round: 16 clients mixing cross-shard increments with
    single-shard lane traffic while a chaos thread arms prepare/decide
    faults and worker kills.  Invariant: joe and amy stay equal — every
    cross-shard transaction commits everywhere or nowhere — and the
    final value equals the number of *reported* successes, in memory and
    after recovery."""
    from repro.runtime.faults import InjectedFault

    cat, wal = _catalog(tmp_path, names=("joe", "amy", "bob"), fsync=False)
    cfg = ServerConfig(workers=4, queue_size=2048,
                       partitions=_plan(cat, names=("joe", "amy", "bob"),
                                        shards=3),
                       retry=RetryPolicy(max_attempts=12, base_delay=0.0005,
                                         max_delay=0.01))

    def cross_increment(txn):
        value = txn.eval_py("query(fn x => x.Salary, joe)")
        txn.update_object("joe", "Salary", value + 1)
        txn.update_object("amy", "Salary", value + 1)

    book_lock = threading.Lock()
    book = {"cross": 0, "bob": 0, "aborted": 0}
    errors = []
    stop = threading.Event()

    def chaos_thread():
        rng = random.Random(7)
        while not stop.is_set():
            point = rng.choice(["2pc.prepare", "2pc.decide",
                                "2pc.ack", "2pc.lane_acquire",
                                "server.worker"])
            with faults.inject(point, at=rng.randint(1, 2)):
                time.sleep(0.005)

    def client_thread(seed):
        rng = random.Random(seed)
        client = server.connect()
        for _ in range(TXNS_PER_THREAD):
            try:
                if rng.random() < 0.6:
                    client.run(cross_increment, footprint=XFP, timeout=120)
                    with book_lock:
                        book["cross"] += 1
                else:
                    client.run(lambda txn: txn.update_object(
                        "bob", "Salary", rng.randint(1, 9)),
                        footprint=FootprintSummary(frozenset({"bob"}),
                                                   frozenset({"bob"})),
                        timeout=120)
                    with book_lock:
                        book["bob"] += 1
            except (ConflictError, InjectedFault):
                with book_lock:
                    book["aborted"] += 1
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)
                raise

    with Server(cat, config=cfg) as server:
        chaos = threading.Thread(target=chaos_thread)
        chaos.start()
        threads = [threading.Thread(target=client_thread, args=(seed,))
                   for seed in range(THREADS)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=600)
            assert not any(t.is_alive() for t in threads), "chaos run hung"
        finally:
            stop.set()
            chaos.join(timeout=30)
            faults.reset()
        assert errors == []
        # Commit-everywhere or abort-everywhere, never mixed — and the
        # ledger balances: successes all visible, aborts all invisible.
        live = _salaries(cat.session)
        assert live["joe"] == live["amy"] == book["cross"]
        stats = server.stats.snapshot()
        assert stats["two_phase_commits"] == book["cross"]
    # The log agrees with memory after a full recovery pass.
    recovered, report = recover(wal)
    vals = _salaries(recovered.session)
    assert vals["joe"] == vals["amy"] == book["cross"]
    for t in report.in_doubt:
        assert t["resolution"] in ("abort", "commit")
    recovered.wal.close()

"""The wire protocol: framing, roundtrips, admission and degradation.

Network *fault* scenarios (torn frames, disconnects mid-commit,
slow-loris) live in ``test_protocol_faults.py``; client reconnect
semantics in ``test_client_reconnect.py``.  This file covers the happy
paths and the protocol-boundary admission behavior: backpressure,
shedding with ``retry_after``, read-only surfacing, deadlines and
exactly-once dedup.
"""

import threading
import time

import pytest

from repro.client import Client, exception_from_wire
from repro.db.catalog import Catalog
from repro.errors import (BudgetExceededError, ConflictError, EvalError,
                          FrameTooLargeError, OverloadedError, ProtocolError,
                          ReadOnlyError)
from repro.server import Server, ServerConfig
from repro.server.protocol import (CODEC_JSON, CODEC_MSGPACK, HEADER,
                                   PROTOCOL_VERSION, ProtocolConfig,
                                   ProtocolServer, decode_payload,
                                   encode_frame, encode_payload, jsonable)


def _catalog():
    cat = Catalog()
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    cat.define_class("Emp", own=["joe"])
    return cat


@pytest.fixture()
def stack():
    cat = _catalog()
    with Server(cat, config=ServerConfig(workers=2)) as server:
        with ProtocolServer(server) as front:
            client = Client(*front.address)
            try:
                yield cat, server, front, client
            finally:
                client.close()


# -- framing ----------------------------------------------------------------

def test_frame_roundtrip_json():
    msg = {"op": "exec", "src": "1 + 1", "id": "x-1", "n": [1, 2, 3]}
    frame = encode_frame(msg, CODEC_JSON)
    codec, length = HEADER.unpack(frame[:HEADER.size])
    assert codec == CODEC_JSON
    assert length == len(frame) - HEADER.size
    assert decode_payload(codec, frame[HEADER.size:]) == msg


def test_unknown_codec_rejected():
    with pytest.raises(ProtocolError):
        encode_payload(0x00, {"op": "ping"})
    with pytest.raises(ProtocolError):
        decode_payload(0x00, b"{}")


def test_msgpack_codec_gated_or_functional():
    # msgpack is optional: with the package absent the codec must fail
    # *structurally* (ProtocolError), never with an ImportError.
    from repro.server import protocol
    if protocol.msgpack is None:
        with pytest.raises(ProtocolError):
            encode_payload(CODEC_MSGPACK, {"op": "ping"})
        with pytest.raises(ProtocolError):
            decode_payload(CODEC_MSGPACK, b"\x80")
    else:  # pragma: no cover - image has no msgpack
        msg = {"op": "ping", "id": "m-1"}
        assert decode_payload(
            CODEC_MSGPACK, encode_payload(CODEC_MSGPACK, msg)) == msg


def test_undecodable_payload_maps_to_protocol_error():
    with pytest.raises(ProtocolError):
        decode_payload(CODEC_JSON, b"{not json")


def test_jsonable_folds_sets_and_objects():
    assert jsonable({1, 3, 2}) == [1, 2, 3]
    assert jsonable({"k": (1, 2)}) == {"k": [1, 2]}
    assert jsonable(None) is None


def test_exception_from_wire_mapping():
    exc = exception_from_wire({"type": "OverloadedError", "message": "full",
                               "retry_after": 0.25})
    assert isinstance(exc, OverloadedError)
    assert exc.retry_after == 0.25
    assert isinstance(exception_from_wire(
        {"type": "ReadOnlyError", "message": "ro"}), ReadOnlyError)
    assert isinstance(exception_from_wire(
        {"type": "EvalError", "message": "boom"}), EvalError)
    assert isinstance(exception_from_wire(
        {"type": "BudgetExceededError", "message": "slow",
         "dimension": "seconds"}), BudgetExceededError)
    assert isinstance(exception_from_wire(
        {"type": "NoSuchError", "message": "?"}), Exception)


# -- roundtrips -------------------------------------------------------------

def test_ping_and_version(stack):
    _, _, _, client = stack
    pong = client.ping()
    assert pong["pong"] is True
    assert pong["version"] == PROTOCOL_VERSION


def test_oneshot_statements_over_the_wire(stack):
    cat, _, _, client = stack
    assert client.extent("Emp") == [{"Name": "Joe", "Salary": 100}]
    client.update_object("joe", "Salary", 150)
    assert client.eval_py("query(fn x => x.Salary, joe)") == 150
    client.insert("Emp", "amy")
    assert client.query("Emp", "fn S => size(S)") == 2
    assert "extent(Emp)" in client.explain("Emp", "fn S => size(S)")
    client.delete("Emp", "amy")
    assert len(client.extent("Emp")) == 1
    assert cat.extent("Emp")[0]["Salary"] == 150


def test_evaluation_error_comes_back_typed(stack):
    from repro.errors import KindError
    _, _, _, client = stack
    with pytest.raises(KindError):
        client.eval_py("query(fn x => x.NoSuchField, joe)")
    # The connection (and the server) survive a failed statement.
    assert client.ping()["pong"] is True


def test_unknown_operation_is_a_protocol_error(stack):
    _, _, _, client = stack
    with pytest.raises(ProtocolError):
        client._call({"op": "warp-core"}, retry_errors=False)
    assert client.ping()["pong"] is True


def test_stats_wire_op(stack):
    _, server, front, client = stack
    client.update_object("joe", "Salary", 1)
    st = client.stats()
    assert st["version"] == PROTOCOL_VERSION
    assert st["read_only"] is False
    assert st["queue_size"] == server.config.queue_size
    assert st["server"]["committed"] >= 1
    assert st["protocol"]["frames_in"] >= 2
    assert "p99_ms" in st["wire_service"]


# -- interactive transactions -----------------------------------------------

def test_wire_transaction_commit(stack):
    cat, _, front, client = stack

    def mixed(txn):
        txn.insert("Emp", "amy")
        salary = txn.eval_py("query(fn x => x.Salary, joe)")
        txn.update_object("joe", "Salary", salary + 1)
        return sorted(r["Name"] for r in txn.extent("Emp"))

    assert client.run(mixed) == ["Amy", "Joe"]
    assert cat.extent("Emp")[0]["Salary"] == 101
    assert front.stats.txns_committed == 1


def test_wire_transaction_statement_error_rolls_back_all(stack):
    from repro.errors import KindError
    cat, _, front, client = stack
    with pytest.raises(KindError):
        with client.transaction() as txn:
            txn.update_object("joe", "Salary", 999)
            txn.insert("Emp", "amy")
            txn.eval_py("query(fn x => x.NoSuchField, joe)")
    # Everything rolled back — store values and class membership alike.
    assert cat.extent("Emp") == [{"Name": "Joe", "Salary": 100}]
    assert front.stats.txns_rolled_back == 1


def test_wire_transaction_client_abort(stack):
    cat, _, front, client = stack

    class Nope(Exception):
        pass

    with pytest.raises(Nope):
        with client.transaction() as txn:
            txn.update_object("joe", "Salary", 999)
            raise Nope()
    assert cat.extent("Emp")[0]["Salary"] == 100
    assert front.stats.txns_rolled_back == 1
    # The connection went back to the pool healthy.
    assert client.eval_py("query(fn x => x.Salary, joe)") == 100


def test_wire_transactions_conflict_and_retry(stack):
    # Two clients increment the same salary concurrently through wire
    # transactions; OCC plus client-side retry must not lose an update.
    cat, _, front, _ = stack
    host, port = front.address
    barrier = threading.Barrier(2)

    def bump():
        attempts = [0]
        with Client(host, port) as c:
            def body(txn):
                attempts[0] += 1
                salary = txn.eval_py("query(fn x => x.Salary, joe)")
                if attempts[0] == 1:
                    # Rendezvous once so both first attempts overlap;
                    # retries run free.
                    barrier.wait(timeout=10)
                txn.update_object("joe", "Salary", salary + 1)
            c.run(body)

    threads = [threading.Thread(target=bump) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert cat.extent("Emp")[0]["Salary"] == 102


def test_wire_transaction_blocks_fast_path_licensing(stack):
    # An open wire transaction registers as ⊤ in the interference table:
    # nothing may be licensed onto the latch-free fast path beside it.
    _, server, _, client = stack
    with client.transaction() as txn:
        txn.update_object("joe", "Salary", 1)
        assert len(server._interference) == 1
    assert len(server._interference) == 0


# -- exactly-once dedup -----------------------------------------------------

def test_mutating_request_with_same_id_replays(stack):
    cat, _, front, client = stack
    rid = client._new_id()
    msg = {"op": "update", "object": "joe", "label": "Salary", "value": 7}
    first = client._request(msg, request_id=rid, deadline=None,
                            retry_errors=False)
    assert not first.get("replayed")
    second = client._request(msg, request_id=rid, deadline=None,
                             retry_errors=False)
    assert second.get("replayed") is True
    assert front.stats.deduped_replies == 1
    assert cat.extent("Emp")[0]["Salary"] == 7


def test_reads_are_not_deduped(stack):
    _, _, front, client = stack
    rid = client._new_id()
    msg = {"op": "extent", "class": "Emp"}
    client._request(msg, request_id=rid, deadline=None, retry_errors=False)
    reply = client._request(msg, request_id=rid, deadline=None,
                            retry_errors=False)
    assert not reply.get("replayed")
    assert front.stats.deduped_replies == 0


# -- admission at the protocol boundary -------------------------------------

def test_overload_sheds_with_retry_after(tmp_path):
    cat = _catalog()
    config = ServerConfig(workers=1, queue_size=1)
    with Server(cat, config=config) as server:
        with ProtocolServer(server) as front:
            host, port = front.address
            release = threading.Event()
            started = threading.Event()

            def blocker(txn):
                started.set()
                release.wait(10)

            server.submit(blocker)
            assert started.wait(10)
            server.submit(lambda txn: None)  # fills the queue
            # No client-side retries: observe the raw shed.
            with Client(host, port, retry=__import__(
                    "repro.server.retry", fromlist=["RetryPolicy"]
                    ).RetryPolicy(max_attempts=1)) as c:
                with pytest.raises(OverloadedError) as info:
                    c.update_object("joe", "Salary", 1)
            assert info.value.retry_after is not None
            assert info.value.retry_after > 0
            assert front.stats.shed_replies >= 1
            release.set()


def test_client_retries_shed_requests_until_capacity_returns(tmp_path):
    cat = _catalog()
    config = ServerConfig(workers=1, queue_size=1)
    with Server(cat, config=config) as server:
        with ProtocolServer(server) as front:
            host, port = front.address
            release = threading.Event()
            started = threading.Event()

            def blocker(txn):
                started.set()
                release.wait(10)

            server.submit(blocker)
            assert started.wait(10)
            server.submit(lambda txn: None)
            # The saturating work finishes shortly; the client's jittered
            # retries (honoring retry_after) ride out the overload.
            timer = threading.Timer(0.1, release.set)
            timer.start()
            try:
                with Client(host, port) as c:
                    c.update_object("joe", "Salary", 3)
            finally:
                timer.cancel()
            assert cat.extent("Emp")[0]["Salary"] == 3


def test_read_only_mode_surfaces_over_the_wire(tmp_path):
    cat = Catalog(wal=str(tmp_path / "db.wal"))
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.define_class("Emp", own=["joe"])
    config = ServerConfig(breaker_threshold=1, breaker_cooldown=30.0)
    with Server(cat, config=config) as server:
        with ProtocolServer(server) as front:
            host, port = front.address
            healthy_append = cat.wal.append

            def dead_disk(op, args):
                raise OSError("injected: disk gone")

            with Client(host, port) as c:
                cat.wal.append = dead_disk
                with pytest.raises(Exception):
                    c.update_object("joe", "Salary", 2)
                assert server.read_only
                # Writes now refuse up front with a retry hint; the ro
                # flag rides on every reply, reads included.
                from repro.server.retry import RetryPolicy
                c.retry = RetryPolicy(max_attempts=1)
                with pytest.raises(ReadOnlyError) as info:
                    c.update_object("joe", "Salary", 2)
                assert info.value.retry_after is not None
                assert c.server_read_only is True
                assert c.extent("Emp")[0]["Salary"] == 100
                assert c.server_read_only is True
                assert c.stats()["read_only"] is True
                cat.wal.append = healthy_append


def test_deadline_is_enforced_end_to_end(tmp_path):
    # A request whose deadline expires while it waits behind a slow one
    # is shed (queue-expired), not evaluated late.
    cat = _catalog()
    config = ServerConfig(workers=1, queue_size=8)
    with Server(cat, config=config) as server:
        with ProtocolServer(server) as front:
            host, port = front.address
            release = threading.Event()
            started = threading.Event()

            def blocker(txn):
                started.set()
                release.wait(10)

            server.submit(blocker)
            assert started.wait(10)
            try:
                from repro.server.retry import RetryPolicy
                with Client(host, port,
                            retry=RetryPolicy(max_attempts=1)) as c:
                    t0 = time.monotonic()
                    # Shed at dequeue when a worker frees up in time
                    # (Overloaded/BudgetExceeded), or the bounded
                    # completion wait expires first (TimeoutError) —
                    # either way the failure is prompt and nothing runs.
                    with pytest.raises((OverloadedError,
                                        BudgetExceededError,
                                        TimeoutError)):
                        c.update_object("joe", "Salary", 9, deadline=0.1)
                    # The failure arrived promptly — bounded by the
                    # deadline, not by the blocker's duration.
                    assert time.monotonic() - t0 < 5.0
            finally:
                release.set()
            assert cat.extent("Emp")[0]["Salary"] == 100


def test_inflight_window_serializes_but_completes(tmp_path):
    # More concurrent requests than the per-connection window: the
    # reader simply stops pulling frames (TCP backpressure); every
    # request still completes.
    cat = _catalog()
    with Server(cat, config=ServerConfig(workers=2)) as server:
        cfg = ProtocolConfig(inflight_per_conn=2)
        with ProtocolServer(server, cfg) as front:
            host, port = front.address
            with Client(host, port, pool_size=1) as c:
                results = [c.eval_py("query(fn x => x.Salary, joe)")
                           for _ in range(12)]
            assert results == [100] * 12
            assert front.stats.frames_in >= 12


def test_open_transaction_does_not_block_other_connections(stack):
    _, _, front, client = stack
    host, port = front.address
    with Client(host, port) as other:
        with client.transaction() as txn:
            txn.update_object("joe", "Salary", 500)
            # A second connection keeps serving disjoint work while the
            # first holds an open transaction (and its write latch).
            assert other.eval_py("query(fn x => x.Salary, amy)") == 200
            other.update_object("amy", "Salary", 250)
        assert other.eval_py("query(fn x => x.Salary, joe)") == 500
        assert other.eval_py("query(fn x => x.Salary, amy)") == 250

"""Unit tests for the retry policy and its jittered backoff."""

import random

import pytest

from repro.errors import ConflictError, EvalError
from repro.server.retry import RetryPolicy


def test_backoff_stays_inside_the_jitter_envelope():
    policy = RetryPolicy(base_delay=0.002, max_delay=0.1)
    rng = random.Random(42)
    for attempt in range(12):
        ceiling = min(0.1, 0.002 * (2 ** attempt))
        for _ in range(20):
            delay = policy.backoff(attempt, rng)
            assert 0.0 <= delay <= ceiling


def test_backoff_is_deterministic_with_a_seeded_rng():
    policy = RetryPolicy()
    a = [policy.backoff(i, random.Random(7)) for i in range(5)]
    b = [policy.backoff(i, random.Random(7)) for i in range(5)]
    assert a == b


def test_run_retries_conflicts_until_success():
    policy = RetryPolicy(max_attempts=5, base_delay=0.0001, max_delay=0.001)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise ConflictError("try again")
        return "done"

    assert policy.run(flaky, rng=random.Random(1)) == "done"
    assert len(attempts) == 3


def test_run_reraises_after_attempts_run_out():
    policy = RetryPolicy(max_attempts=3, base_delay=0.0001, max_delay=0.001)
    attempts = []

    def always_conflicts():
        attempts.append(1)
        raise ConflictError("never resolves")

    with pytest.raises(ConflictError):
        policy.run(always_conflicts, rng=random.Random(1))
    assert len(attempts) == 3


def test_run_does_not_retry_non_retriable_errors():
    policy = RetryPolicy(max_attempts=5)
    attempts = []

    def type_error():
        attempts.append(1)
        raise EvalError("this is a bug, not contention")

    with pytest.raises(EvalError):
        policy.run(type_error)
    assert len(attempts) == 1


def test_on_retry_observes_each_backoff():
    policy = RetryPolicy(max_attempts=4, base_delay=0.0001, max_delay=0.001)
    seen = []

    def flaky():
        if len(seen) < 2:
            raise ConflictError("again")
        return "ok"

    policy.run(flaky, rng=random.Random(1),
               on_retry=lambda attempt, exc: seen.append(attempt))
    assert seen == [0, 1]


def test_max_attempts_validated():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)

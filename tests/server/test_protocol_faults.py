"""The *network* fault matrix, plus over-the-wire stress.

Every named network fault below must leave the server consistent: no
half-applied transaction, no leaked latch, no stuck connection slot —
and the scenario table is checked for completeness against
:data:`NETWORK_FAULTS` so a new fault name cannot be declared without a
recovery scenario.  The rule under test is the tentpole's: a transaction
interrupted by the network **commits durably or rolls back cleanly**,
never in between.
"""

import socket
import struct
import threading
import time

import pytest

from repro.client import Client
from repro.db.catalog import Catalog
from repro.errors import FrameTooLargeError, ProtocolError
from repro.runtime import faults
from repro.runtime.faults import inject
from repro.server import Server, ServerConfig
from repro.server.protocol import (CODEC_JSON, HEADER, ProtocolConfig,
                                   ProtocolServer, decode_payload,
                                   encode_frame)
from repro.server.retry import RetryPolicy


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.reset()


def _catalog():
    cat = Catalog()
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    cat.define_class("Emp", own=["joe"])
    return cat


def _observe(cat):
    return {
        "objects": sorted(cat.objects),
        "classes": {name: list(spec.own)
                    for name, spec in cat.classes.items()},
        "extent": cat.extent("Emp"),
    }


# -- raw-socket helpers (the misbehaving peer) ------------------------------

def _connect(front):
    sock = socket.create_connection(front.address, timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _send(sock, msg):
    sock.sendall(encode_frame(msg, CODEC_JSON))


def _recv(sock, timeout=10.0):
    sock.settimeout(timeout)
    header = _recv_exact(sock, HEADER.size)
    codec, length = HEADER.unpack(header)
    return decode_payload(codec, _recv_exact(sock, length))


def _recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionResetError("peer closed")
        buf += chunk
    return buf


def _wait_stat(stats, name, value, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if getattr(stats, name) >= value:
            return True
        time.sleep(0.01)
    return False


def _assert_recovered(cat, server, front, before=None):
    """The invariant every scenario ends on: catalog consistent (or
    unchanged), latches free, and a fresh client can transact."""
    if before is not None:
        assert _observe(cat) == before
    with Client(*front.address) as probe:
        probe.run(lambda txn: txn.update_object("amy", "Salary", 777))
        assert probe.eval_py("query(fn x => x.Salary, amy)") == 777
        probe.update_object("amy", "Salary", 200)


# -- the scenarios ----------------------------------------------------------

def _torn_frame(cat, server, front):
    # The peer dies mid-payload: nothing dispatches, nothing changes.
    before = _observe(cat)
    sock = _connect(front)
    frame = encode_frame({"op": "update", "object": "joe",
                          "label": "Salary", "value": 1}, CODEC_JSON)
    sock.sendall(frame[:len(frame) - 3])
    sock.close()
    assert _wait_stat(front.stats, "torn_frames", 1)
    _assert_recovered(cat, server, front, before)


def _truncated_header(cat, server, front):
    # Even less arrives — part of the 5-byte header.
    before = _observe(cat)
    sock = _connect(front)
    sock.sendall(b"\x4a\x00")
    sock.close()
    assert _wait_stat(front.stats, "torn_frames", 1)
    _assert_recovered(cat, server, front, before)


def _oversized_frame(cat, server, front):
    # A frame over the limit is drained and refused with a *structured*
    # reply; the same connection then serves normal traffic.
    before = _observe(cat)
    sock = _connect(front)
    big = b"x" * (front.config.max_frame + 1)
    sock.sendall(HEADER.pack(CODEC_JSON, len(big)) + big)
    reply = _recv(sock)
    assert reply["ok"] is False
    assert reply["error"]["type"] == "FrameTooLargeError"
    _send(sock, {"op": "ping", "id": "after-big"})
    pong = _recv(sock)
    assert pong["ok"] is True and pong["id"] == "after-big"
    sock.close()
    assert front.stats.frames_too_large == 1
    _assert_recovered(cat, server, front, before)


def _garbage_payload(cat, server, front):
    # A well-framed but undecodable payload: structured error, usable
    # connection.
    before = _observe(cat)
    sock = _connect(front)
    junk = b"{this is not json"
    sock.sendall(HEADER.pack(CODEC_JSON, len(junk)) + junk)
    reply = _recv(sock)
    assert reply["ok"] is False
    assert reply["error"]["type"] == "ProtocolError"
    _send(sock, {"op": "ping", "id": "after-junk"})
    assert _recv(sock)["ok"] is True
    sock.close()
    _assert_recovered(cat, server, front, before)


def _slow_loris(cat, server, front):
    # A frame that stalls mid-read past frame_timeout gets the
    # connection closed; other clients are unaffected throughout.
    before = _observe(cat)
    sock = _connect(front)
    sock.sendall(HEADER.pack(CODEC_JSON, 64) + b'{"op"')  # ...and stall
    assert _wait_stat(front.stats, "slowloris_closed", 1,
                      timeout=front.config.frame_timeout + 5)
    sock.close()
    _assert_recovered(cat, server, front, before)


def _disconnect_before_commit(cat, server, front):
    # A wire transaction with applied statements loses its connection
    # before the commit frame: full rollback, latches released.
    before = _observe(cat)
    sock = _connect(front)
    _send(sock, {"op": "txn.begin", "id": "t-1"})
    assert _recv(sock)["ok"] is True
    _send(sock, {"op": "txn.op", "id": "t-2",
                 "stmt": {"op": "update", "object": "joe",
                          "label": "Salary", "value": 999}})
    assert _recv(sock)["ok"] is True
    _send(sock, {"op": "txn.op", "id": "t-3",
                 "stmt": {"op": "insert", "class": "Emp",
                          "object": "amy"}})
    assert _recv(sock)["ok"] is True
    sock.close()  # vanish without committing
    assert _wait_stat(front.stats, "txns_rolled_back", 1)
    _assert_recovered(cat, server, front, before)


def _torn_commit_frame(cat, server, front):
    # The commit frame itself is torn: it never dispatches, so the
    # transaction rolls back — "commit durably or roll back cleanly".
    before = _observe(cat)
    sock = _connect(front)
    _send(sock, {"op": "txn.begin", "id": "c-1"})
    assert _recv(sock)["ok"] is True
    _send(sock, {"op": "txn.op", "id": "c-2",
                 "stmt": {"op": "update", "object": "joe",
                          "label": "Salary", "value": 555}})
    assert _recv(sock)["ok"] is True
    commit = encode_frame({"op": "txn.commit", "id": "c-3"}, CODEC_JSON)
    sock.sendall(commit[:len(commit) - 2])
    sock.close()
    assert _wait_stat(front.stats, "txns_rolled_back", 1)
    assert front.stats.txns_committed == 0
    _assert_recovered(cat, server, front, before)


def _disconnect_after_commit(cat, server, front):
    # The commit frame *arrived* but the ack was lost (injected fault at
    # the reply write): the commit is durable, and a same-id probe on a
    # fresh connection replays it instead of re-executing.
    sock = _connect(front)
    _send(sock, {"op": "txn.begin", "id": "a-1"})
    assert _recv(sock)["ok"] is True
    _send(sock, {"op": "txn.op", "id": "a-2",
                 "stmt": {"op": "update", "object": "joe",
                          "label": "Salary", "value": 444}})
    assert _recv(sock)["ok"] is True
    with inject("proto.reply"):
        _send(sock, {"op": "txn.commit", "id": "a-commit"})
        with pytest.raises((ConnectionError, socket.timeout)):
            _recv(sock, timeout=5.0)
    sock.close()
    assert cat.extent("Emp")[0]["Salary"] == 444  # committed, durably
    probe = _connect(front)
    _send(probe, {"op": "txn.commit", "id": "a-commit"})
    reply = _recv(probe)
    probe.close()
    assert reply["ok"] is True
    assert reply["replayed"] is True
    assert front.stats.txns_committed == 1  # once, not twice
    assert front.stats.deduped_replies == 1
    _assert_recovered(cat, server, front)


def _abandoned_transaction(cat, server, front):
    # An open transaction that goes idle past txn_idle_timeout is rolled
    # back so its latches cannot starve other writers forever.
    before = _observe(cat)
    sock = _connect(front)
    _send(sock, {"op": "txn.begin", "id": "z-1"})
    assert _recv(sock)["ok"] is True
    _send(sock, {"op": "txn.op", "id": "z-2",
                 "stmt": {"op": "update", "object": "joe",
                          "label": "Salary", "value": 333}})
    assert _recv(sock)["ok"] is True
    # ...and the client wanders off without closing the socket.
    assert _wait_stat(front.stats, "txns_rolled_back", 1,
                      timeout=front.config.txn_idle_timeout + 5)
    sock.close()
    _assert_recovered(cat, server, front, before)


NETWORK_FAULTS = {
    "torn-frame": _torn_frame,
    "truncated-header": _truncated_header,
    "oversized-frame": _oversized_frame,
    "garbage-payload": _garbage_payload,
    "slow-loris": _slow_loris,
    "disconnect-before-commit": _disconnect_before_commit,
    "torn-commit-frame": _torn_commit_frame,
    "disconnect-after-commit": _disconnect_after_commit,
    "abandoned-transaction": _abandoned_transaction,
}

#: The declared matrix; the completeness test pins the scenario table to
#: it so the two cannot drift apart.
NETWORK_POINTS = (
    "torn-frame", "truncated-header", "oversized-frame", "garbage-payload",
    "slow-loris", "disconnect-before-commit", "torn-commit-frame",
    "disconnect-after-commit", "abandoned-transaction",
)


def test_network_matrix_is_complete():
    assert set(NETWORK_FAULTS) == set(NETWORK_POINTS)


@pytest.mark.parametrize("fault", NETWORK_POINTS)
def test_network_fault_recovers(fault):
    cat = _catalog()
    config = ProtocolConfig(frame_timeout=0.3, txn_idle_timeout=0.5)
    with Server(cat, config=ServerConfig(workers=2)) as server:
        with ProtocolServer(server, config) as front:
            NETWORK_FAULTS[fault](cat, server, front)


# -- over-the-wire stress ---------------------------------------------------

def test_sixteen_clients_with_chaos_lose_no_updates():
    """16 networked clients increment a shared counter under OCC while
    chaos connections tear frames and stall mid-read; every committed
    increment must land exactly once."""
    cat = _catalog()
    clients, increments = 16, 4
    config = ProtocolConfig(frame_timeout=0.5)
    stress_retry = RetryPolicy(max_attempts=60, base_delay=0.001,
                               max_delay=0.05)
    with Server(cat, config=ServerConfig(workers=4)) as server:
        with ProtocolServer(server, config) as front:
            host, port = front.address
            stop = threading.Event()
            failures = []

            def chaos():
                # A rotating cast of misbehaving peers on their own
                # connections: torn frames, junk, and stalls.
                step = 0
                while not stop.is_set():
                    try:
                        sock = socket.create_connection((host, port),
                                                        timeout=5)
                        mode = step % 3
                        if mode == 0:
                            frame = encode_frame({"op": "ping"},
                                                 CODEC_JSON)
                            sock.sendall(frame[:3])
                        elif mode == 1:
                            sock.sendall(HEADER.pack(CODEC_JSON, 32)
                                         + b'{"op"')
                            time.sleep(0.05)
                        else:
                            sock.sendall(b"\xff\xff")
                        sock.close()
                    except OSError:
                        pass
                    step += 1
                    time.sleep(0.01)

            def worker():
                try:
                    with Client(host, port, retry=stress_retry) as c:
                        for _ in range(increments):
                            def bump(txn):
                                v = txn.eval_py(
                                    "query(fn x => x.Salary, joe)")
                                txn.update_object("joe", "Salary", v + 1)
                            c.run(bump)
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            chaos_threads = [threading.Thread(target=chaos, daemon=True)
                             for _ in range(2)]
            threads = [threading.Thread(target=worker)
                       for _ in range(clients)]
            for t in chaos_threads + threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stop.set()
            for t in chaos_threads:
                t.join(timeout=10)

            assert not failures, failures
            # Zero lost updates, zero double-applies.
            assert cat.extent("Emp")[0]["Salary"] == (
                100 + clients * increments)
            assert front.stats.txns_committed == clients * increments
            assert front.stats.torn_frames > 0  # the chaos really ran

"""Concurrent stress: N client threads, mixed workload, zero lost updates.

The acceptance bar for the serving layer: 16 threads each running 50
mixed transactions (reads, view queries, read-modify-write updates)
against one shared catalog, where every read-modify-write either commits
exactly once or surfaces as a ConflictError after exhausting retries —
never silently loses an update.  The shared counter is the detector: its
final value must equal the number of increments that *reported* success.
"""

import os
import random
import threading

import pytest

from repro.db.catalog import Catalog
from repro.errors import ConflictError
from repro.query import bulk_insert
from repro.server import Server, ServerConfig
from repro.server.retry import RetryPolicy

THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "16"))
TXNS_PER_THREAD = int(os.environ.get("REPRO_STRESS_TXNS", "50"))


def _catalog():
    cat = Catalog()
    cat.new_object("ctr", Name="counter", mutable={"Count": 0})
    cat.new_object("joe", Name="Joe", mutable={"Salary": 1000})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 2000})
    cat.define_class("Emp", own=["joe", "amy"])
    # A re-viewing inclusion, so reads navigate a §4.2-style view chain.
    cat.session.exec(
        "val Names = class {} includes Emp "
        "as fn x => [Name = x.Name] where fn o => true end")
    return cat


def _increment(txn):
    count = txn.eval_py("query(fn x => x.Count, ctr)")
    txn.update_object("ctr", "Count", count + 1)


def _bump_salary(who):
    def bump(txn):
        salary = txn.eval_py(f"query(fn x => x.Salary, {who})")
        txn.update_object(who, "Salary", salary + 1)
    return bump


def _read_views(txn):
    names = txn.eval_py(
        "c-query(fn S => map(fn o => query(fn v => v.Name, o), S), Names)")
    assert sorted(names) == ["Amy", "Joe"]


@pytest.mark.slow
def test_stress_mixed_transactions_no_lost_updates():
    cat = _catalog()
    config = ServerConfig(
        workers=8, queue_size=THREADS * TXNS_PER_THREAD + 8,
        retry=RetryPolicy(max_attempts=12, base_delay=0.0005,
                          max_delay=0.01))
    book_lock = threading.Lock()
    book = {"increments": 0, "joe": 0, "amy": 0, "conflicts": 0}
    errors = []

    def client_thread(seed):
        rng = random.Random(seed)
        client = server.connect()
        for _ in range(TXNS_PER_THREAD):
            roll = rng.random()
            try:
                if roll < 0.45:
                    client.run(_increment, timeout=60)
                    with book_lock:
                        book["increments"] += 1
                elif roll < 0.70:
                    who = rng.choice(["joe", "amy"])
                    client.run(_bump_salary(who), timeout=60)
                    with book_lock:
                        book[who] += 1
                else:
                    client.run(_read_views, timeout=60)
            except ConflictError:
                # Retries exhausted under contention: an acceptable
                # outcome, as long as the update did NOT land.
                with book_lock:
                    book["conflicts"] += 1
            except BaseException as exc:  # anything else is a real bug
                errors.append(exc)
                raise

    CONTENDERS = 4

    def make_contended_increment(gate):
        # First attempt parks at the barrier between read and write, so
        # all contenders read the same count and then collide; retries
        # skip the barrier and resolve normally.
        waited = [False]

        def body(txn):
            count = txn.eval_py("query(fn x => x.Count, ctr)")
            if not waited[0]:
                waited[0] = True
                try:
                    gate.wait(timeout=10)
                except threading.BrokenBarrierError:
                    pass
            txn.update_object("ctr", "Count", count + 1)

        return body

    with Server(cat, config=config) as server:
        # Phase 0 — a guaranteed-overlapping round: conflict detection is
        # exercised even if the timed phase below happens to serialize.
        gate = threading.Barrier(CONTENDERS)
        reqs = [server.submit(make_contended_increment(gate))
                for _ in range(CONTENDERS)]
        for req in reqs:
            server.wait(req, timeout=120)
        with book_lock:
            book["increments"] += CONTENDERS
        assert server.stats.conflicts > 0, (
            "four transactions read the same counter value before any "
            "wrote; at least one must have conflicted")

        # Phase 1 — the mixed 16×50 workload.
        threads = [threading.Thread(target=client_thread, args=(seed,))
                   for seed in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "stress run hung"
        assert errors == []

        # THE invariant: every committed increment is visible, every
        # conflicted one is not — zero lost updates, zero ghosts.
        final = cat.extent("Emp")
        count = cat.session.eval_py("query(fn x => x.Count, ctr)")
        assert count == book["increments"]
        by_name = {r["Name"]: r["Salary"] for r in final}
        assert by_name["Joe"] == 1000 + book["joe"]
        assert by_name["Amy"] == 2000 + book["amy"]

        stats = server.stats.snapshot()
        total = THREADS * TXNS_PER_THREAD + CONTENDERS
        assert stats["committed"] + stats["failed"] == stats["submitted"]
        assert stats["submitted"] == total
        assert stats["failed"] == book["conflicts"]
        assert stats["conflicts"] > 0 and stats["retries"] > 0


@pytest.mark.slow
def test_stress_survives_worker_deaths():
    # Kill a worker mid-run (every ~25th dequeue); the pool must respawn
    # and no admitted request may be lost.
    from repro.runtime import faults

    cat = _catalog()
    config = ServerConfig(workers=4, queue_size=512)
    total = 60
    with Server(cat, config=config) as server:
        client = server.connect()
        ok_lock = threading.Lock()
        ok = [0]
        plan_ctx = faults.inject("server.worker", at=25)
        plan_ctx.__enter__()
        try:
            threads = []

            def run_some(n):
                for _ in range(n):
                    client.run(_increment, timeout=120)
                    with ok_lock:
                        ok[0] += 1

            for _ in range(4):
                t = threading.Thread(target=run_some, args=(total // 4,))
                t.start()
                threads.append(t)
            for t in threads:
                t.join(timeout=300)
            assert not any(t.is_alive() for t in threads)
        finally:
            plan_ctx.__exit__(None, None, None)
            faults.reset()
        assert server.stats.worker_deaths == 1
        count = cat.session.eval_py("query(fn x => x.Count, ctr)")
        assert count == ok[0] == total


# -- indexed queries under concurrency ------------------------------------

_ENG_NAMES = ('fn S => map(fn o => query(fn v => v.Name, o), '
              'filter(fn o => query(fn v => v.Dept = "eng", o), S))')


def _indexed_catalog(n=48):
    """An optimizing catalog with a Staff extent big enough to index."""
    cat = Catalog(optimize=True)
    cat.new_object("ctr", Name="counter", mutable={"Count": 0})
    cat.new_object("seed", Name="seed", Dept="eng", mutable={"Salary": 1})
    cat.define_class("Staff", own=["seed"])
    bulk_insert(cat.session, "Staff",
                [{"Name": f"e{i}", "Dept": ["eng", "ops", "qa"][i % 3],
                  "Salary": i} for i in range(n)],
                mutable=("Salary",))
    return cat


@pytest.mark.slow
def test_indexed_query_conflicts_with_concurrent_insert():
    # The regression this pins: an index serves a query from a structure
    # built *before* the transaction, so serving must re-register the
    # extent read in the OCC read set.  If it does not, the reader below
    # commits a count taken from a stale extent and never notices the
    # concurrent insert.
    cat = _indexed_catalog()
    config = ServerConfig(
        workers=2, retry=RetryPolicy(max_attempts=8, base_delay=0.0005,
                                     max_delay=0.01))
    with Server(cat, config=config) as server:
        client = server.connect()
        client.run(lambda t: t.query("Staff", _ENG_NAMES))  # builds index
        assert "index lookup on" in client.run(
            lambda t: t.explain("Staff", _ENG_NAMES))

        gate = threading.Barrier(2)
        done = threading.Event()
        waited = [False]

        def reader(txn):
            names = txn.query("Staff", _ENG_NAMES)
            if not waited[0]:
                # First attempt parks between its indexed read and its
                # write while the writer commits an insert.
                waited[0] = True
                gate.wait(timeout=30)
                assert done.wait(timeout=30)
            txn.update_object("ctr", "Count", len(names))

        def writer():
            gate.wait(timeout=30)
            w = server.connect()

            def body(txn):
                txn.exec('val late = IDView([Name = "late", '
                         'Dept = "eng", Salary := 9])')
                txn.insert("Staff", "late")

            w.run(body, timeout=60)
            done.set()

        wt = threading.Thread(target=writer)
        wt.start()
        client.run(reader, timeout=120)
        wt.join(timeout=120)
        assert not wt.is_alive()

        # 16 bulk "eng" rows + seed + the concurrent insert.
        count = cat.session.eval_py("query(fn x => x.Count, ctr)")
        assert count == 18
        assert server.stats.conflicts >= 1
        planner = cat.session.planner
        assert planner is not None and planner.stats.index_hits >= 1


@pytest.mark.slow
def test_stress_indexed_queries_with_writes():
    # A round of the mixed workload where the reads go through indexes
    # and materialized views while writers churn extent membership and
    # mutable fields.  Every successful query must see a consistent
    # snapshot: all "eng" rows, nothing else, never a torn delta.
    cat = _indexed_catalog()
    config = ServerConfig(
        workers=8, queue_size=2048,
        retry=RetryPolicy(max_attempts=12, base_delay=0.0005,
                          max_delay=0.01))
    book_lock = threading.Lock()
    book = {"inserts": 0, "conflicts": 0}
    errors = []
    rounds = max(4, TXNS_PER_THREAD // 2)

    def client_thread(seed):
        rng = random.Random(1000 + seed)
        client = server.connect()
        for i in range(rounds):
            roll = rng.random()
            try:
                if roll < 0.5:
                    names = client.run(
                        lambda t: t.query("Staff", _ENG_NAMES), timeout=60)
                    assert len(names) >= 17
                    assert all(n == "seed" or n.startswith(("e", "w"))
                               for n in names)
                elif roll < 0.75:
                    name = f"w{seed}_{i}"

                    def body(txn, name=name):
                        txn.exec(f'val {name} = IDView([Name = "{name}", '
                                 'Dept = "eng", Salary := 0])')
                        txn.insert("Staff", name)

                    client.run(body, timeout=60)
                    with book_lock:
                        book["inserts"] += 1
                else:
                    client.run(
                        lambda t: t.update_object(
                            "seed", "Salary", rng.randrange(100)),
                        timeout=60)
            except ConflictError:
                with book_lock:
                    book["conflicts"] += 1
            except BaseException as exc:
                errors.append(exc)
                raise

    with Server(cat, config=config) as server:
        threads = [threading.Thread(target=client_thread, args=(seed,))
                   for seed in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "stress run hung"
        assert errors == []

        final = cat.session.eval_py(f"c-query({_ENG_NAMES}, Staff)")
        assert len(final) == 17 + book["inserts"]
        planner = cat.session.planner
        assert planner is not None
        assert planner.stats.aborts == 0
        assert planner.stats.index_hits + planner.stats.mv_hits >= 1

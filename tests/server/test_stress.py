"""Concurrent stress: N client threads, mixed workload, zero lost updates.

The acceptance bar for the serving layer: 16 threads each running 50
mixed transactions (reads, view queries, read-modify-write updates)
against one shared catalog, where every read-modify-write either commits
exactly once or surfaces as a ConflictError after exhausting retries —
never silently loses an update.  The shared counter is the detector: its
final value must equal the number of increments that *reported* success.
"""

import os
import random
import threading

import pytest

from repro.db.catalog import Catalog
from repro.errors import ConflictError
from repro.server import Server, ServerConfig
from repro.server.retry import RetryPolicy

THREADS = int(os.environ.get("REPRO_STRESS_THREADS", "16"))
TXNS_PER_THREAD = int(os.environ.get("REPRO_STRESS_TXNS", "50"))


def _catalog():
    cat = Catalog()
    cat.new_object("ctr", Name="counter", mutable={"Count": 0})
    cat.new_object("joe", Name="Joe", mutable={"Salary": 1000})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 2000})
    cat.define_class("Emp", own=["joe", "amy"])
    # A re-viewing inclusion, so reads navigate a §4.2-style view chain.
    cat.session.exec(
        "val Names = class {} includes Emp "
        "as fn x => [Name = x.Name] where fn o => true end")
    return cat


def _increment(txn):
    count = txn.eval_py("query(fn x => x.Count, ctr)")
    txn.update_object("ctr", "Count", count + 1)


def _bump_salary(who):
    def bump(txn):
        salary = txn.eval_py(f"query(fn x => x.Salary, {who})")
        txn.update_object(who, "Salary", salary + 1)
    return bump


def _read_views(txn):
    names = txn.eval_py(
        "c-query(fn S => map(fn o => query(fn v => v.Name, o), S), Names)")
    assert sorted(names) == ["Amy", "Joe"]


@pytest.mark.slow
def test_stress_mixed_transactions_no_lost_updates():
    cat = _catalog()
    config = ServerConfig(
        workers=8, queue_size=THREADS * TXNS_PER_THREAD + 8,
        retry=RetryPolicy(max_attempts=12, base_delay=0.0005,
                          max_delay=0.01))
    book_lock = threading.Lock()
    book = {"increments": 0, "joe": 0, "amy": 0, "conflicts": 0}
    errors = []

    def client_thread(seed):
        rng = random.Random(seed)
        client = server.connect()
        for _ in range(TXNS_PER_THREAD):
            roll = rng.random()
            try:
                if roll < 0.45:
                    client.run(_increment, timeout=60)
                    with book_lock:
                        book["increments"] += 1
                elif roll < 0.70:
                    who = rng.choice(["joe", "amy"])
                    client.run(_bump_salary(who), timeout=60)
                    with book_lock:
                        book[who] += 1
                else:
                    client.run(_read_views, timeout=60)
            except ConflictError:
                # Retries exhausted under contention: an acceptable
                # outcome, as long as the update did NOT land.
                with book_lock:
                    book["conflicts"] += 1
            except BaseException as exc:  # anything else is a real bug
                errors.append(exc)
                raise

    CONTENDERS = 4

    def make_contended_increment(gate):
        # First attempt parks at the barrier between read and write, so
        # all contenders read the same count and then collide; retries
        # skip the barrier and resolve normally.
        waited = [False]

        def body(txn):
            count = txn.eval_py("query(fn x => x.Count, ctr)")
            if not waited[0]:
                waited[0] = True
                try:
                    gate.wait(timeout=10)
                except threading.BrokenBarrierError:
                    pass
            txn.update_object("ctr", "Count", count + 1)

        return body

    with Server(cat, config=config) as server:
        # Phase 0 — a guaranteed-overlapping round: conflict detection is
        # exercised even if the timed phase below happens to serialize.
        gate = threading.Barrier(CONTENDERS)
        reqs = [server.submit(make_contended_increment(gate))
                for _ in range(CONTENDERS)]
        for req in reqs:
            server.wait(req, timeout=120)
        with book_lock:
            book["increments"] += CONTENDERS
        assert server.stats.conflicts > 0, (
            "four transactions read the same counter value before any "
            "wrote; at least one must have conflicted")

        # Phase 1 — the mixed 16×50 workload.
        threads = [threading.Thread(target=client_thread, args=(seed,))
                   for seed in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not any(t.is_alive() for t in threads), "stress run hung"
        assert errors == []

        # THE invariant: every committed increment is visible, every
        # conflicted one is not — zero lost updates, zero ghosts.
        final = cat.extent("Emp")
        count = cat.session.eval_py("query(fn x => x.Count, ctr)")
        assert count == book["increments"]
        by_name = {r["Name"]: r["Salary"] for r in final}
        assert by_name["Joe"] == 1000 + book["joe"]
        assert by_name["Amy"] == 2000 + book["amy"]

        stats = server.stats.snapshot()
        total = THREADS * TXNS_PER_THREAD + CONTENDERS
        assert stats["committed"] + stats["failed"] == stats["submitted"]
        assert stats["submitted"] == total
        assert stats["failed"] == book["conflicts"]
        assert stats["conflicts"] > 0 and stats["retries"] > 0


@pytest.mark.slow
def test_stress_survives_worker_deaths():
    # Kill a worker mid-run (every ~25th dequeue); the pool must respawn
    # and no admitted request may be lost.
    from repro.runtime import faults

    cat = _catalog()
    config = ServerConfig(workers=4, queue_size=512)
    total = 60
    with Server(cat, config=config) as server:
        client = server.connect()
        ok_lock = threading.Lock()
        ok = [0]
        plan_ctx = faults.inject("server.worker", at=25)
        plan_ctx.__enter__()
        try:
            threads = []

            def run_some(n):
                for _ in range(n):
                    client.run(_increment, timeout=120)
                    with ok_lock:
                        ok[0] += 1

            for _ in range(4):
                t = threading.Thread(target=run_some, args=(total // 4,))
                t.start()
                threads.append(t)
            for t in threads:
                t.join(timeout=300)
            assert not any(t.is_alive() for t in threads)
        finally:
            plan_ctx.__exit__(None, None, None)
            faults.reset()
        assert server.stats.worker_deaths == 1
        count = cat.session.eval_py("query(fn x => x.Count, ctr)")
        assert count == ok[0] == total

"""Footprint-partitioned worker lanes: routing, counters, soundness."""

import threading

import pytest

from repro.analysis.partition import PartitionPlan, partition_workload
from repro.analysis.workload import build_conflict_graph
from repro.db.catalog import Catalog
from repro.errors import PartitionError
from repro.server import Server, ServerConfig
from repro.server.protocol import ProtocolConfig, ProtocolServer

NAMES = ("joe", "amy", "bob", "sue")
RMW = "query(fn x => update(x, Salary, x.Salary + 1), {n})"


def _catalog():
    cat = Catalog()
    for n in NAMES:
        cat.new_object(n, Name=n.title(), mutable={"Salary": 0})
    return cat


def _plan(cat, shards=4):
    graph = build_conflict_graph(
        {f"t_{n}": RMW.format(n=n) for n in NAMES}, session=cat.session)
    return partition_workload(graph, shards=shards, session=cat.session)


def test_partitioned_contention_zero_lost_updates():
    cat = _catalog()
    cfg = ServerConfig(workers=2, partitions=_plan(cat))
    with Server(cat, config=cfg) as server:
        client = server.connect()
        errors = []

        def hammer(name):
            try:
                for _ in range(30):
                    client.exec(RMW.format(n=name))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in NAMES]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for n in NAMES:
            assert client.eval_py(f"query(fn x => x.Salary, {n})") == 30
        stats = server.stats.snapshot()
        # Each lane serializes its shard: the contended RMWs never
        # conflict and never block on the interference table.
        assert stats["conflicts"] == 0
        assert stats["single_shard_commits"] >= 120
        assert stats["fast_commits"] == stats["committed"]
        assert server.lane_depths() == [0, 0, 0, 0]


def test_two_shard_commit_uses_two_phase_not_global_pool():
    cat = _catalog()
    with Server(cat, config=ServerConfig(partitions=_plan(cat))) as server:
        client = server.connect()
        client.exec(RMW.format(n="joe"))
        client.exec("query(fn x => update(x, Salary, "
                    "query(fn y => y.Salary, amy)), joe)")
        stats = server.stats.snapshot()
        assert stats["single_shard_commits"] == 1
        # A two-shard transaction commits through the lane-to-lane
        # two-phase handshake instead of escalating to the global pool.
        assert stats["two_phase_commits"] == 1
        assert stats["cross_shard_commits"] == 0


def test_three_shard_transaction_escalates_to_global_pool():
    cat = _catalog()
    with Server(cat, config=ServerConfig(partitions=_plan(cat))) as server:
        client = server.connect()
        client.exec("query(fn x => update(x, Salary, "
                    "query(fn y => y.Salary, amy) + "
                    "query(fn z => z.Salary, bob)), joe)")
        stats = server.stats.snapshot()
        assert stats["cross_shard_commits"] == 1
        assert stats["two_phase_commits"] == 0


def test_opaque_python_body_stays_on_global_pool():
    cat = _catalog()
    with Server(cat, config=ServerConfig(partitions=_plan(cat))) as server:
        result = server.connect().run(
            lambda txn: txn.eval_py("query(fn x => x.Salary, joe)"))
        assert result == 0
        assert server.stats.snapshot()["cross_shard_commits"] == 1


def test_top_footprint_stays_on_global_pool():
    cat = _catalog()
    cat.define_class("Emp", own=list(NAMES))
    plan = _plan(cat)  # Emp not in any shard: scans always escalate
    with Server(cat, config=ServerConfig(partitions=plan)) as server:
        client = server.connect()
        client.exec("c-query(fn S => map(fn x => "
                    "query(fn v => update(v, Salary, 7), x), S), Emp)")
        stats = server.stats.snapshot()
        assert stats["cross_shard_commits"] == 1
        assert stats["single_shard_commits"] == 0
        assert client.eval_py("query(fn x => x.Salary, joe)") == 7


def test_config_accepts_plan_artifact_dict():
    cat = _catalog()
    cfg = ServerConfig(partitions=_plan(cat).to_dict())
    with Server(cat, config=cfg) as server:
        assert isinstance(server.partitions, PartitionPlan)
        server.connect().exec(RMW.format(n="bob"))
        assert server.stats.snapshot()["single_shard_commits"] == 1


def test_unsound_plan_is_refused_at_startup():
    # joe reaches state inside Emp's extent: shards {joe} | {Emp} are
    # unsound for latch-free lanes and the server must not start.
    cat = _catalog()
    cat.define_class("Emp", own=["joe"])
    plan = PartitionPlan([["joe"], ["Emp"]])
    with pytest.raises(PartitionError, match="reach shared state"):
        Server(cat, config=ServerConfig(partitions=plan))


def test_no_partitions_means_no_lanes():
    with Server(_catalog()) as server:
        assert server.partitions is None
        assert server.lane_depths() == []
        server.connect().exec(RMW.format(n="joe"))
        stats = server.stats.snapshot()
        assert stats["single_shard_commits"] == 0
        assert stats["cross_shard_commits"] == 0


def test_wire_stats_expose_lanes_and_counters():
    cat = _catalog()
    with Server(cat, config=ServerConfig(partitions=_plan(cat))) as server:
        server.connect().exec(RMW.format(n="amy"))
        front = ProtocolServer(server, ProtocolConfig())
        payload = front.stats_payload()
        assert payload["lanes"] == {"count": 4, "depths": [0, 0, 0, 0]}
        for key in ("fast_commits", "interference_blocked",
                    "single_shard_commits", "cross_shard_commits",
                    "two_phase_commits", "in_doubt_resolved"):
            assert key in payload["server"]
        assert payload["server"]["single_shard_commits"] == 1

"""Unit tests for admission control: the bounded queue and the breaker."""

import time

import pytest

from repro.errors import OverloadedError, ReadOnlyError
from repro.server.admission import AdmissionQueue, CircuitBreaker


# -- the queue --------------------------------------------------------------

def test_queue_is_fifo():
    q = AdmissionQueue(4)
    q.put("a")
    q.put("b")
    assert q.get(0.01) == "a"
    assert q.get(0.01) == "b"


def test_full_queue_sheds_instead_of_blocking():
    q = AdmissionQueue(2)
    q.put("a")
    q.put("b")
    t0 = time.monotonic()
    with pytest.raises(OverloadedError):
        q.put("c")
    assert time.monotonic() - t0 < 0.5  # rejected, not queued-with-wait
    assert len(q) == 2


def test_put_front_bypasses_the_bound():
    # The worker-death requeue path: the request was already admitted
    # once, so re-admission must not shed it even when the queue is full.
    q = AdmissionQueue(1)
    q.put("a")
    q.put_front("urgent")
    assert q.get(0.01) == "urgent"
    assert q.get(0.01) == "a"


def test_get_times_out_with_none():
    q = AdmissionQueue(1)
    assert q.get(0.01) is None


def test_close_drains_and_rejects():
    q = AdmissionQueue(4)
    q.put("a")
    q.put("b")
    assert q.close() == ["a", "b"]
    assert len(q) == 0
    with pytest.raises(OverloadedError):
        q.put("c")


def test_queue_maxsize_validated():
    with pytest.raises(ValueError):
        AdmissionQueue(0)


# -- the breaker ------------------------------------------------------------

def _boom():
    raise OSError("disk on fire")


def test_breaker_trips_after_threshold_consecutive_failures():
    b = CircuitBreaker(threshold=3, cooldown=60.0)
    for _ in range(3):
        with pytest.raises(OSError):
            b.run(_boom)
    assert b.state == "open"
    calls = []
    with pytest.raises(ReadOnlyError):
        b.run(lambda: calls.append(1))
    assert calls == []  # open = fail fast, the disk is not touched


def test_success_resets_the_failure_count():
    b = CircuitBreaker(threshold=2, cooldown=60.0)
    with pytest.raises(OSError):
        b.run(_boom)
    b.run(lambda: None)  # resets the consecutive counter
    with pytest.raises(OSError):
        b.run(_boom)
    assert b.state == "closed"  # 1 consecutive failure, not 2


def test_half_open_probe_success_closes():
    b = CircuitBreaker(threshold=1, cooldown=0.02)
    with pytest.raises(OSError):
        b.run(_boom)
    assert b.state == "open"
    time.sleep(0.03)
    assert b.state == "half-open"
    assert b.run(lambda: "ok") == "ok"
    assert b.state == "closed"


def test_half_open_probe_failure_reopens():
    b = CircuitBreaker(threshold=1, cooldown=0.02)
    with pytest.raises(OSError):
        b.run(_boom)
    time.sleep(0.03)
    with pytest.raises(OSError):
        b.run(_boom)  # the probe fails
    assert b.state == "open"
    with pytest.raises(ReadOnlyError):
        b.run(lambda: None)


def test_write_allowed_mirrors_state():
    b = CircuitBreaker(threshold=1, cooldown=0.02)
    assert b.write_allowed()
    with pytest.raises(OSError):
        b.run(_boom)
    assert not b.write_allowed()
    time.sleep(0.03)
    assert b.write_allowed()  # half-open admits the probe


def test_breaker_threshold_validated():
    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0)

"""Client reconnect semantics: worker respawn and server restart.

The pooled client must ride out the two big lifecycle faults — a dead
worker thread inside a live server, and a full server restart with WAL
recovery — surfacing nothing (respawn) or only retryable transport
errors (restart), with committed transactions visible afterwards.
"""

import threading
import time

import pytest

from repro.client import Client
from repro.db.catalog import Catalog
from repro.runtime import faults
from repro.runtime.faults import inject
from repro.server import Server, ServerConfig
from repro.server.protocol import ProtocolConfig, ProtocolServer
from repro.server.retry import RetryPolicy


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.reset()


def _catalog(wal=None):
    cat = Catalog(wal=wal)
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    cat.define_class("Emp", own=["joe"])
    return cat


def test_worker_respawn_is_invisible_over_the_wire():
    # The worker that picks up the request dies mid-service; the pool
    # respawns it and re-queues the request.  The networked client sees
    # a normal (if slower) success — no error, no duplicate.
    cat = _catalog()
    with Server(cat) as server:
        with ProtocolServer(server) as front:
            with Client(*front.address) as c:
                with inject("server.worker"):
                    # One-shots flow through the worker pool; the pool
                    # respawns the dead worker and re-queues the request.
                    c.update_object("joe", "Salary", 111, deadline=30)
                assert server.stats.worker_deaths == 1
                assert cat.extent("Emp")[0]["Salary"] == 111
                assert c.eval_py("query(fn x => x.Salary, joe)") == 111


def test_server_restart_committed_work_survives(tmp_path):
    # Commit over the wire, kill the whole stack, recover from the WAL
    # on the same port: the same client object reconnects through its
    # pool and sees the committed transaction.
    wal = str(tmp_path / "db.wal")
    cat = _catalog(wal=wal)
    server = Server(cat)
    front = ProtocolServer(server)
    host, port = front.start()
    client = Client(host, port,
                    retry=RetryPolicy(max_attempts=20, base_delay=0.01,
                                      max_delay=0.2))
    try:
        client.run(lambda txn: txn.update_object("joe", "Salary", 321))
        assert client.eval_py("query(fn x => x.Salary, joe)") == 321
        front.close()
        server.close()

        # While the server is down, requests fail with a retryable
        # transport error once the attempts run out — never a hang.
        with pytest.raises(ConnectionError):
            Client(host, port,
                   retry=RetryPolicy(max_attempts=2, base_delay=0.001,
                                     max_delay=0.01)).ping()

        # The recovery doctor replays the WAL; the front end rebinds
        # the same port.
        recovered = Server(Catalog.recover(wal))
        front2 = ProtocolServer(recovered,
                                ProtocolConfig(host=host, port=port))
        front2.start()
        try:
            # Same client instance: its pooled (dead) connections are
            # discarded and re-dialed transparently.
            assert client.eval_py("query(fn x => x.Salary, joe)") == 321
            client.run(lambda txn: txn.update_object("joe", "Salary", 322))
            assert client.eval_py("query(fn x => x.Salary, joe)") == 322
        finally:
            front2.close()
            recovered.close()
    finally:
        client.close()
        if front._thread is not None and not front._closing:
            front.close()
            server.close()


def test_restart_mid_session_surfaces_retryable_then_recovers(tmp_path):
    # A client caught *mid-stream* by the restart: in-flight requests
    # fail over to the recovered server via transport retries, and the
    # session total reflects every acknowledged commit exactly once.
    wal = str(tmp_path / "db.wal")
    cat = _catalog(wal=wal)
    server = Server(cat)
    front = ProtocolServer(server)
    host, port = front.start()
    policy = RetryPolicy(max_attempts=200, base_delay=0.005, max_delay=0.1)
    acknowledged = []
    stop_restarting = threading.Event()

    def restarter():
        # One bounce, roughly mid-run.
        time.sleep(0.15)
        front.close()
        server.close()
        time.sleep(0.1)
        recovered = Server(Catalog.recover(wal))
        front2 = ProtocolServer(recovered,
                                ProtocolConfig(host=host, port=port))
        front2.start()
        stop_restarting.set()
        return recovered, front2

    bounce = {}

    def run_restarter():
        bounce["stack"] = restarter()

    t = threading.Thread(target=run_restarter)
    t.start()
    try:
        with Client(host, port, retry=policy) as c:
            for i in range(20):
                def bump(txn):
                    v = txn.eval_py("query(fn x => x.Salary, joe)")
                    txn.update_object("joe", "Salary", v + 1)
                    return v + 1
                acknowledged.append(c.run(bump, deadline=10))
                time.sleep(0.02)
    finally:
        t.join(timeout=30)
    recovered, front2 = bounce["stack"]
    try:
        final = recovered.catalog.extent("Emp")[0]["Salary"]
        # Every acknowledged commit is present: the final value is at
        # least the last acknowledged one (an unacknowledged commit that
        # raced the shutdown may add more — durable is durable).
        assert len(acknowledged) == 20
        assert final >= acknowledged[-1]
        # And monotone growth with no lost update among acknowledged
        # increments: strictly increasing by 1 each time.
        assert acknowledged == sorted(acknowledged)
    finally:
        front2.close()
        recovered.close()

"""Crash-recovery doctor tests: replay, reconciliation, idempotence."""

import json

from repro.db.catalog import Catalog
from repro.db.persist import dump_json
from repro.server import Server, recover


def _seed(wal_path):
    cat = Catalog(wal=str(wal_path))
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    cat.define_class("Emp", own=["joe"])
    cat.insert("Emp", "amy")
    cat.update_object("joe", "Salary", 111)
    return cat


def _observe(cat):
    return {
        "classes": {name: list(spec.own) for name, spec in
                    cat.classes.items()},
        "extent": sorted((r["Name"], r["Salary"])
                         for r in cat.extent("Emp")),
    }


def test_plain_wal_replay(tmp_path):
    wal = tmp_path / "db.wal"
    expected = _observe(_seed(wal))
    cat, report = recover(str(wal))
    assert _observe(cat) == expected
    assert report.replayed == report.wal_records == 5
    assert not report.torn_tail
    assert report.reconciled == [] and report.rolled_back == []


def test_recover_is_idempotent(tmp_path):
    wal = tmp_path / "db.wal"
    _seed(wal)
    first, r1 = recover(str(wal))
    second, r2 = recover(str(wal))
    assert _observe(first) == _observe(second)
    assert r1.wal_records == r2.wal_records


def test_snapshot_overlap_is_reconciled_not_double_applied(tmp_path):
    # Crash window: checkpoint snapshot written, WAL *not yet* truncated.
    # Blind replay would re-insert amy (duplicating the membership) and
    # re-run every definition; reconciliation must skip what the snapshot
    # already holds.
    wal = tmp_path / "db.wal"
    snap = tmp_path / "db.json"
    cat = _seed(wal)
    dump_json(cat, str(snap))
    expected = _observe(cat)
    recovered, report = recover(str(wal), snapshot_path=str(snap))
    assert _observe(recovered) == expected
    assert report.snapshot_loaded
    assert report.replayed == 0
    assert len(report.reconciled) == 5
    # In particular: exactly one amy membership, not two.
    assert [m for m, _v in recovered.classes["Emp"].own] == ["joe", "amy"]


def test_snapshot_plus_wal_suffix(tmp_path):
    # Checkpoint mid-history: the snapshot holds a prefix, the WAL the
    # whole history; the suffix replays, the prefix reconciles.
    wal = tmp_path / "db.wal"
    snap = tmp_path / "db.json"
    cat = Catalog(wal=str(wal))
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.define_class("Emp", own=["joe"])
    dump_json(cat, str(snap))
    cat.update_object("joe", "Salary", 555)  # after the checkpoint
    recovered, report = recover(str(wal), snapshot_path=str(snap))
    assert recovered.extent("Emp") == [{"Name": "Joe", "Salary": 555}]
    assert report.replayed == 1
    assert len(report.reconciled) == 2


def test_torn_tail_is_truncated_and_reported(tmp_path):
    wal = tmp_path / "db.wal"
    expected = _observe(_seed(wal))
    with open(wal, "ab") as fh:
        fh.write(b'{"op": "update_object", "args"')  # crash mid-append
    recovered, report = recover(str(wal))
    assert report.torn_tail
    assert any("torn tail" in note for note in report.rolled_back)
    assert _observe(recovered) == expected
    # Idempotent: the truncation was durable, a second pass is clean.
    again, report2 = recover(str(wal))
    assert not report2.torn_tail
    assert _observe(again) == expected


def test_group_commit_txn_records_replay_atomically(tmp_path):
    wal = tmp_path / "db.wal"
    cat = _seed(wal)
    with Server(cat) as server:

        def two_updates(txn):
            txn.update_object("joe", "Salary", 1000)
            txn.update_object("amy", "Salary", 2000)

        server.connect().run(two_updates)
        expected = _observe(cat)
    # The transaction went to disk as ONE record...
    with open(wal) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    txn_records = [r for r in records if r["op"] == "txn"]
    assert len(txn_records) == 1
    assert [sub["op"] for sub in txn_records[0]["args"]["ops"]] == [
        "update_object", "update_object"]
    # ...and replays back as both updates.
    recovered, report = recover(str(wal))
    assert _observe(recovered) == expected


def test_recovered_catalog_keeps_logging(tmp_path):
    wal = tmp_path / "db.wal"
    _seed(wal)
    cat, _report = recover(str(wal))
    cat.update_object("joe", "Salary", 42)
    cat2, _ = recover(str(wal))
    assert cat2.extent("Emp")[0]["Salary"] in (42, 111)
    assert any(r["Salary"] == 42 for r in cat2.extent("Emp"))


def test_report_summary_is_human_readable(tmp_path):
    wal = tmp_path / "db.wal"
    _seed(wal)
    _cat, report = recover(str(wal))
    text = report.summary()
    assert "5/5 WAL records replayed" in text
    assert str(wal) in text

"""Property test: compiled evaluation ≡ interpreted evaluation.

Two sessions over the same setup execute the *same* randomized
interleaving of expressions and mutations; one runs with the closure
compiler (``compile="auto"``), the other on the bare machine
(``compile="off"``, the semantic oracle).  After every step the two must
agree on

* result values (under :func:`tests.query.helpers.norm` — equality up
  to the renaming of freshly allocated oids),
* store effects (later reads observe earlier updates identically),
* error behaviour (same exception type, same message),
* effort metrics (``applications`` and friends count identically), and
* OCC tracking (an installed store tracker sees the same read/write
  trace on both sides, normalized to first-seen location indices).

Budget parity gets its own test: for every expression the two sessions
must exhaust a step budget at exactly the same limits — the compiler
owes precisely one tick per lowered node, matching the interpreter's
pre-order descent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Budget, BudgetExceededError, Session
from repro.errors import EvalError

from ..query.helpers import norm

_SETUP = '''
    val joe = IDView([Name = "Joe", Age = 21, Salary := 1000])
    val sue = IDView([Name = "Sue", Age = 35, Salary := 2000])
    val Emp = class {joe, sue} end
    val payview = fn x => [Name = x.Name, Pay = x.Salary]
    fun sumto n = if n < 1 then 0 else n + sumto (n - 1)
    fun twice f = fn x => f (f x)
'''

# Expression templates; {n} is a small integer chosen by the strategy.
# The pool crosses every compiled layer: arithmetic and comparison
# specializations, closures (plain, curried, recursive, higher-order),
# records (immutable, mutable, update, extract sharing), sets and hom
# folds, views and view composition, query, and the class operations.
_EXPRS = [
    "1 + 2 * {n} - 7",
    "({n} < 3) = (not ({n} >= 3))",
    "sumto ({n} + 3)",
    "twice (fn x => x * x) ({n} + 2)",
    "(fn f => fn x => f (f x)) (fn y => y + {n}) 1",
    "let r = [A := {n}, B = 2] in "
    "let u = update(r, A, r.B + {n}) in r.A * 100 + r.B end end",
    "let r = [A := {n}] in let s = [Sh = extract(r, A), C = 1] in "
    "let u = update(r, A, {n} + 50) in s.Sh end end end",
    "hom({{1, 2, 3, {n}}}, fn x => x * x, fn a => fn b => a + b, 0)",
    "size(filter(fn x => x > {n}, {{0, 5, 10, 15}}))",
    "size(union({{1, {n}}}, {{2, {n} + 1}}))",
    'member({n}, {{1, 3, 5}})',
    "query(fn v => v.Pay + {n}, joe as payview)",
    "query(fn v => v.Name ^ \"!\", sue as payview as fn y => y)",
    "c-query(fn S => map(fn o => query(fn v => v.Salary + {n}, o), S), "
    "Emp)",
    "c-query(fn S => size(filter("
    "fn o => query(fn v => v.Salary > {n} * 100, o), S)), Emp)",
    "if {n} < 2 then sumto 3 else sumto 4",
    "1 div ({n} - 2)",          # EvalError when n = 2
    "[A = {n}, B = {n} + 1].B mod 3",
]

# Mutations interleaved between expressions: field updates through
# views, class extent churn, and global rebinding (the compile cache
# must notice and recompile, never serve a stale program).
_update_op = st.tuples(st.just("update"),
                       st.sampled_from(["joe", "sue"]),
                       st.integers(0, 5000))
_insert_op = st.tuples(st.just("insert"), st.integers(0, 9))
_rebind_op = st.tuples(st.just("rebind"), st.integers(0, 9))
_eval_op = st.tuples(st.just("eval"),
                     st.integers(0, len(_EXPRS) - 1),
                     st.integers(0, 4))

_programs = st.lists(
    st.one_of(_eval_op, _update_op, _insert_op, _rebind_op),
    min_size=1, max_size=20)


def _pair():
    interp = Session(compile="off")
    comp = Session()
    assert comp.compile_mode == "auto"
    interp.exec(_SETUP)
    comp.exec(_SETUP)
    return interp, comp


def _agree(interp, comp, src):
    """Evaluate ``src`` on both sessions; both sides must agree."""
    try:
        expected = norm(interp.eval(src))
        err = None
    except EvalError as exc:
        expected, err = None, str(exc)
    if err is None:
        assert norm(comp.eval(src)) == expected
    else:
        with pytest.raises(EvalError) as caught:
            comp.eval(src)
        assert str(caught.value) == err


@settings(max_examples=40, deadline=None)
@given(ops=_programs)
def test_compiled_equals_interpreted(ops):
    interp, comp = _pair()
    fresh = 0
    for op in ops:
        kind = op[0]
        if kind == "update":
            _, who, salary = op
            _agree(interp, comp,
                   f"query(fn v => update(v, Salary, {salary}), {who})")
        elif kind == "insert":
            _, pick = op
            name = f"e{fresh}"
            fresh += 1
            src = (f'val {name} = IDView([Name = "{name}", '
                   f'Age = {20 + pick}, Salary := {pick * 111}])')
            for s in (interp, comp):
                s.exec(src)
                s.exec(f"insert({name}, Emp)")
        elif kind == "rebind":
            _, pick = op
            src = f"val payview = fn x => [Name = x.Name, Pay = {pick}]"
            for s in (interp, comp):
                s.exec(src)
        else:
            _, ei, n = op
            _agree(interp, comp, _EXPRS[ei].format(n=n))
    # Store effects already compared step by step; close with a full
    # probe of the world the mutations built.
    for probe in ("c-query(fn S => map(fn o => "
                  "query(fn v => v.Salary, o), S), Emp)",
                  "query(fn v => v.Pay, joe as payview)"):
        _agree(interp, comp, probe)
    # Effort metrics: the compiler owes exactly the interpreter's counts.
    im, cm = interp.machine.metrics, comp.machine.metrics
    for f in ("records_created", "objects_created",
              "view_materializations", "applications"):
        assert getattr(im, f) == getattr(cm, f), f
    # The run must actually have exercised the compiler.
    assert comp.compile_stats["compiled_runs"] > 0


class _RecordingTracker:
    """A store tracker that logs the read/write trace, nothing more."""

    def __init__(self):
        self.events = []
        self._first_seen = {}

    def _key(self, obj):
        k = self._first_seen.get(id(obj))
        if k is None:
            k = len(self._first_seen)
            self._first_seen[id(obj)] = k
        return k

    def did_read(self, loc):
        self.events.append(("read", self._key(loc)))

    def will_write(self, loc):
        self.events.append(("write", self._key(loc)))

    def did_read_extent(self, cls):
        self.events.append(("read-extent", self._key(cls)))

    def will_write_extent(self, cls):
        self.events.append(("write-extent", self._key(cls)))


_TRACKED = [
    "query(fn v => v.Pay, joe as payview)",
    "query(fn v => update(v, Salary, v.Salary + {n}), joe)",
    "c-query(fn S => map(fn o => query(fn v => v.Salary, o), S), Emp)",
    "let r = [A := {n}] in let u = update(r, A, r.A + 1) in r.A end end",
    "insert(sue, Emp)",
    "delete(sue, Emp)",
]


@settings(max_examples=25, deadline=None)
@given(ei=st.integers(0, len(_TRACKED) - 1), n=st.integers(0, 9))
def test_occ_tracking_parity(ei, n):
    # The server's OCC layer observes evaluation through the store
    # tracker; compiled programs must report the same reads and writes
    # in the same order, or commit-time validation would diverge.
    interp, comp = _pair()
    src = _TRACKED[ei].format(n=n)
    traces = []
    for s in (interp, comp):
        tracker = _RecordingTracker()
        s.machine.store.tracker = tracker
        try:
            s.eval(src)
        finally:
            s.machine.store.tracker = None
        traces.append(tracker.events)
    assert traces[0] == traces[1]
    assert comp.compile_stats["compiled_runs"] > 0


_BUDGETED = [
    "sumto 6",
    "hom({1, 2, 3}, fn x => x * x, fn a => fn b => a + b, 0)",
    "query(fn v => v.Pay, joe as payview)",
    "c-query(fn S => size(filter("
    "fn o => query(fn v => v.Salary > 1500, o), S)), Emp)",
    "let r = [A := 1, B = 2] in "
    "let u = update(r, A, r.B + 3) in r.A end end",
    "twice (twice (fn x => x + 1)) 0",
]


@pytest.mark.parametrize("src", _BUDGETED)
def test_budget_exhaustion_parity(src):
    # Find each side's exact exhaustion frontier independently; the
    # frontiers must coincide — same total fuel, and *both* sides blow
    # at every limit below it.
    def frontier(make):
        for limit in range(1, 10_000):
            s = make()
            try:
                s.exec(src, budget=Budget(max_steps=limit))
                return limit
            except BudgetExceededError:
                continue
        raise AssertionError("no budget suffices")  # pragma: no cover

    def interp():
        s = Session(compile="off")
        s.exec(_SETUP)
        return s

    def comp():
        s = Session()
        s.exec(_SETUP)
        return s

    assert frontier(interp) == frontier(comp)


def test_budget_error_type_and_dimension_parity():
    outcomes = []
    for mode in ("off", "auto"):
        s = Session(compile=mode)
        s.exec("fun loop x = loop x")
        with pytest.raises(BudgetExceededError) as exc:
            s.exec("loop 1", budget=Budget(max_steps=5_000))
        outcomes.append(exc.value.dimension)
        assert s.machine.budget is None
        assert s.eval_py("1 + 2") == 3
    assert outcomes == ["steps", "steps"]

"""The compile engine: cache, invalidation, stats, explain, server wiring."""

import pytest

from repro import Session
from repro.db.catalog import Catalog
from repro.server import Server, ServerConfig


# -- session surface --------------------------------------------------------

def test_compile_kwarg_is_validated():
    with pytest.raises(ValueError):
        Session(compile="jit")
    assert Session(compile="off").compile_mode == "off"
    assert Session().compile_mode == "auto"


def test_stats_are_empty_before_any_evaluation():
    s = Session()
    assert s.compile_stats == {
        "programs_compiled": 0, "fallbacks": 0, "cache_hits": 0,
        "invalidations": 0, "compiled_runs": 0}


def test_compile_off_never_compiles():
    s = Session(compile="off")
    assert s.eval_py("1 + 2") == 3
    assert s.compile_stats["compiled_runs"] == 0
    assert s.compile_stats["programs_compiled"] == 0


def test_repeat_evaluation_hits_the_program_cache():
    s = Session()
    assert s.eval_py("1 + 2 * 3") == 7
    base = s.compile_stats
    assert base["programs_compiled"] >= 1
    assert s.eval_py("1 + 2 * 3") == 7
    after = s.compile_stats
    assert after["cache_hits"] == base["cache_hits"] + 1
    # The hit served the cached program: nothing new was compiled.
    assert after["programs_compiled"] == base["programs_compiled"]
    assert after["compiled_runs"] == base["compiled_runs"] + 1


def test_rebinding_a_global_invalidates_cached_programs():
    # The regression this guards: a cached program embeds the *value* a
    # free name had at compile time; rebinding the name must force a
    # recompile, never serve the stale embedding.
    s = Session()
    s.exec("fun inc x = x + 1")
    assert s.eval_py("inc 41") == 42
    assert s.eval_py("inc 41") == 42  # cached
    before = s.compile_stats
    s.exec("fun inc x = x + 100")
    assert s.eval_py("inc 41") == 141
    after = s.compile_stats
    assert after["invalidations"] == before["invalidations"] + 1
    assert after["programs_compiled"] == before["programs_compiled"] + 1


def test_rebinding_a_builtin_invalidates_specializations():
    # Specialized arithmetic pins the pristine builtin; shadowing '+'
    # with a session binding must reach the new definition.
    s = Session()
    assert s.eval_py("1 + 2") == 3
    s.exec("val fortytwo = fn a => fn b => 42")
    s.exec("val x = 5")
    assert s.eval_py("fortytwo 1 2") == 42


def test_structural_fallback_is_cached_with_its_reason():
    s = Session()
    src = "relobj(a = IDView([N = 1]), b = IDView([M = 2]))"
    s.eval(src)
    s.eval(src)
    stats = s.compile_stats
    # One compile attempt, cached as a fallback; the second run pays
    # nothing and compiles nothing.
    assert stats["fallbacks"] == 1
    assert stats["compiled_runs"] == 0
    decision = s.compile_engine.last_decision
    assert decision is not None and not decision.compiled
    assert "relobj" in decision.reason


# -- explain ----------------------------------------------------------------

def test_explain_plan_reports_compiled():
    s = Session()
    report = s.explain_plan("1 + 2")
    assert "execution: compiled" in report


def test_explain_plan_reports_fallback_reason():
    s = Session()
    report = s.explain_plan(
        "relobj(a = IDView([N = 1]), b = IDView([M = 2]))")
    assert ("execution: interpreted — relation-object construction "
            "(relobj) is not compiled yet" in report)


def test_explain_plan_reports_compilation_disabled():
    s = Session(compile="off")
    report = s.explain_plan("1 + 2")
    assert "execution: interpreted — compilation disabled" in report


def test_repl_explain_shows_the_decision():
    from repro.lang.repl import run_line
    s = Session(optimize=True)
    out = run_line(s, ":explain 1 + 2")
    assert out is not None and "execution: compiled" in out


# -- server wiring ----------------------------------------------------------

def _catalog():
    cat = Catalog()
    cat.new_object("joe", Name="Joe", mutable={"Salary": 100})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 200})
    cat.define_class("Emp", own=["joe"])
    return cat


def test_server_worker_path_runs_compiled_programs():
    with Server(_catalog(), config=ServerConfig(workers=2)) as server:
        client = server.connect()
        for _ in range(3):
            client.exec(
                "query(fn x => update(x, Salary, x.Salary + 1), joe)")
        assert client.eval_py("query(fn x => x.Salary, joe)") == 103
        snap = server.compile_snapshot()
        assert snap["compiled_programs"] > 0
        assert snap["compiled_runs"] > 0
        assert snap["compile_fallbacks"] >= 0
        assert set(snap) == {"compiled_programs", "compile_fallbacks",
                             "compile_cache_hits", "compile_invalidations",
                             "compiled_runs"}
        # The repeated statement was served from the program cache.
        assert snap["compile_cache_hits"] > 0


def test_server_lane_path_runs_compiled_programs():
    from repro.analysis.partition import partition_workload
    from repro.analysis.workload import build_conflict_graph
    cat = _catalog()
    rmw = "query(fn x => update(x, Salary, x.Salary + 1), {n})"
    graph = build_conflict_graph(
        {f"t_{n}": rmw.format(n=n) for n in ("joe", "amy")},
        session=cat.session)
    plan = partition_workload(graph, shards=2, session=cat.session)
    with Server(cat, config=ServerConfig(workers=2,
                                         partitions=plan)) as server:
        client = server.connect()
        for n in ("joe", "amy"):
            for _ in range(5):
                client.exec(rmw.format(n=n))
        assert client.eval_py("query(fn x => x.Salary, joe)") == 105
        snap = server.compile_snapshot()
        assert snap["compiled_programs"] > 0
        assert snap["compiled_runs"] > 0


def test_stats_wire_op_carries_compile_counters():
    from repro.client import Client
    from repro.server.protocol import ProtocolServer
    with Server(_catalog(), config=ServerConfig(workers=2)) as server:
        with ProtocolServer(server) as front:
            client = Client(*front.address)
            try:
                client.exec(
                    "query(fn x => update(x, Salary, 7), joe)")
                st = client.stats()
                assert st["compile"]["compiled_programs"] > 0
                assert st["compile"] == server.compile_snapshot()
            finally:
                client.close()

"""Transactional sessions: Session.transaction and exec(atomic=True)."""

import pytest

from repro import Session
from repro.errors import ReproError, TypeInferenceError


@pytest.fixture()
def s():
    session = Session()
    session.exec('val joe = IDView([Name = "Joe", Salary := 2000, '
                 'Bonus := 5000])')
    return session


def observe(session):
    """The observable session state the transaction guarantees cover."""
    return {
        "names": sorted(session._global_frame),
        "types": sorted(session.type_env.names()),
        "impure": session.purity.snapshot(),
        "allocations": session.machine.store.allocations,
        "salary": session.eval_py("query(fn x => x.Salary, joe)"),
        "bonus": session.eval_py("query(fn x => x.Bonus, joe)"),
    }


def test_failed_program_leaves_no_trace(s):
    before = observe(s)
    with pytest.raises(TypeInferenceError):
        with s.transaction():
            s.exec('query(fn x => update(x, Salary, 9), joe) '
                   'val keep = [a := 1] '
                   'val bad = 1 + true')
    assert observe(s) == before


def test_exec_atomic_is_all_or_nothing(s):
    before = observe(s)
    with pytest.raises(ReproError):
        s.exec('query(fn x => update(x, Salary, 9), joe) '
               'val bad = nonsense', atomic=True)
    assert observe(s) == before


def test_exec_non_atomic_keeps_prefix(s):
    with pytest.raises(ReproError):
        s.exec('query(fn x => update(x, Salary, 9), joe) val bad = nonsense')
    assert s.eval_py("query(fn x => x.Salary, joe)") == 9


def test_commit_keeps_effects(s):
    with s.transaction():
        s.exec('query(fn x => update(x, Salary, 7777), joe) '
               'val extra = [a := 1]')
    assert s.eval_py("query(fn x => x.Salary, joe)") == 7777
    assert "extra" in s._global_frame


def test_rollback_restores_shared_locations(s):
    # A location shared via extract is rolled back exactly once, and both
    # sharers observe the original value (the Section 2 aliasing example).
    s.exec('val base = [Salary := 100]')
    s.exec('val mirror = [S := extract(base, Salary)]')
    with pytest.raises(ReproError):
        with s.transaction():
            s.exec('update(mirror, S, 1) val bad = nonsense')
    assert s.eval_py("base.Salary") == 100
    assert s.eval_py("mirror.S") == 100


def test_rollback_restores_class_extents(s):
    s.exec("val C = class {joe} end")
    with pytest.raises(ReproError):
        with s.transaction():
            s.exec('val ann = IDView([Name = "Ann", Salary := 1, '
                   'Bonus := 2]) '
                   'insert(ann, C) '
                   'val bad = nonsense')
    assert s.eval_py("c-query(fn S => size(S), C)") == 1
    with pytest.raises(ReproError):
        with s.transaction():
            s.exec('delete(joe, C) val bad = nonsense')
    assert s.eval_py("c-query(fn S => size(S), C)") == 1


def test_nested_inner_commit_outer_rollback(s):
    with pytest.raises(ReproError):
        with s.transaction():
            with s.transaction():
                s.exec('query(fn x => update(x, Salary, 9), joe)')
            # Inner committed; outer failure must still undo it.
            s.exec('val bad = nonsense')
    assert s.eval_py("query(fn x => x.Salary, joe)") == 2000


def test_nested_inner_rollback_outer_commit(s):
    with s.transaction():
        s.exec('query(fn x => update(x, Salary, 1111), joe)')
        with pytest.raises(ReproError):
            with s.transaction():
                s.exec('query(fn x => update(x, Bonus, 0), joe) '
                       'val bad = nonsense')
    assert s.eval_py("query(fn x => x.Salary, joe)") == 1111
    assert s.eval_py("query(fn x => x.Bonus, joe)") == 5000


def test_purity_marks_roll_back(s):
    with pytest.raises(ReproError):
        with s.transaction():
            s.exec('val impure_one = fn x => update(joe, Salary, x) '
                   'val bad = nonsense')
    assert "impure_one" not in s.purity.snapshot()


def test_session_usable_after_rollback(s):
    with pytest.raises(ReproError):
        with s.transaction():
            s.exec('val bad = nonsense')
    assert s.eval_py("1 + 2") == 3
    s.exec("val later = 10")
    assert s.eval_py("later") == 10


def test_rollback_rewinds_location_ids(s):
    """Rolled-back allocations rewind the id counter, so a retry allocates
    identical ids — deterministic replay (regression for the module-global
    counter)."""
    with pytest.raises(ReproError):
        with s.transaction():
            s.exec('val r = [a := 1, b := 2] val bad = nonsense')
    s.exec('val r = [a := 1, b := 2]')
    ids_retry = sorted(c.id for c in
                       s.runtime_env.lookup("r").cells.values())

    s2 = Session()
    s2.exec('val joe = IDView([Name = "Joe", Salary := 2000, '
            'Bonus := 5000])')
    s2.exec('val r = [a := 1, b := 2]')
    ids_fresh = sorted(c.id for c in
                       s2.runtime_env.lookup("r").cells.values())
    assert ids_retry == ids_fresh

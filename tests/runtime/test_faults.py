"""The fault-injection matrix.

For *every* registered injection point, a fault injected mid-operation
must leave the session/catalog observably consistent — bindings, types,
purity marks and store contents identical to the pre-transaction state —
and the WAL replayable.  The scenario table below is keyed by point name
and checked for exhaustiveness against :data:`repro.runtime.faults.POINTS`,
so wiring a new injection point into the runtime without adding a
consistency scenario fails this suite.
"""

import pytest

from repro import Budget, ConflictError, OverloadedError, Session
from repro.db.catalog import Catalog
from repro.db.persist import dump_json, load_json
from repro.db.wal import read_wal
from repro.runtime import InjectedFault, faults
from repro.runtime.faults import inject
from repro.server import Server


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.reset()


def _session():
    s = Session()
    s.exec('val joe = IDView([Name = "Joe", Salary := 2000])')
    s.exec("fun count n = if n = 0 then 0 else count (n - 1)")
    return s


def _observe_session(s):
    return {
        "names": sorted(s._global_frame),
        "types": sorted(s.type_env.names()),
        "impure": s.purity.snapshot(),
        "allocations": s.machine.store.allocations,
        "salary": s.eval_py("query(fn x => x.Salary, joe)"),
    }


# The atomic program each session scenario interrupts: a store write, new
# allocations, a binding and enough evaluation steps to reach the
# budget-tick slow path (which runs every 256 steps).
_PROGRAM = ('query(fn x => update(x, Salary, 9), joe) '
            'val tmp = [a := 1, b := 2] '
            'val steps = count 200')


def _session_scenario(tmp_path, point, budget=None):
    s = _session()
    before = _observe_session(s)
    with inject(point):
        with pytest.raises(InjectedFault):
            s.exec(_PROGRAM, atomic=True, budget=budget)
    assert _observe_session(s) == before
    # The session stays fully usable: the same program now succeeds.
    s.exec(_PROGRAM, atomic=True)
    assert s.eval_py("query(fn x => x.Salary, joe)") == 9


def _catalog(tmp_path):
    cat = Catalog(wal=str(tmp_path / "cat.wal"))
    cat.new_object("alice", Name="Alice", mutable={"Salary": 3000})
    cat.new_object("zoe", Name="Zoe", mutable={"Salary": 50})
    cat.define_class("Staff", own=["alice"])
    return cat


def _observe_catalog(cat):
    return {
        "objects": sorted(cat.objects),
        "classes": {name: list(spec.own) for name, spec in
                    cat.classes.items()},
        "extent": cat.extent("Staff"),
        "session_names": sorted(cat.session._global_frame),
    }


def _assert_wal_replayable(cat):
    """The WAL must replay to the last complete mutation, torn tail or
    not — recovery never errors and reproduces a consistent catalog."""
    recovered = Catalog.recover(cat.wal.path)
    assert sorted(recovered.classes) == sorted(cat.classes)
    assert recovered.extent("Staff") is not None


def _wal_append_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with inject(point):
        with pytest.raises(InjectedFault):
            cat.insert("Staff", "zoe")
    # The op rolled back everywhere: specs, session bindings, extents.
    assert _observe_catalog(cat) == before
    _assert_wal_replayable(cat)
    # And the catalog still works.
    cat.insert("Staff", "zoe")
    assert len(cat.extent("Staff")) == 2


def _wal_fsync_scenario(tmp_path, point):
    # Simulate the OS failing the fsync after the bytes were written —
    # the in-memory op rolls back; the WAL keeps the (complete) record,
    # i.e. the log may run ahead of memory by one record, never behind.
    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with inject(point, exc_type=OSError):
        with pytest.raises(OSError):
            cat.update_object("alice", "Salary", 9999)
    assert _observe_catalog(cat) == before
    records, torn = read_wal(cat.wal.path)
    assert not torn
    recovered = Catalog.recover(cat.wal.path)
    # Replay applies the logged-but-unacknowledged update (redo semantics).
    assert recovered.extent("Staff")[0]["Salary"] in (3000, 9999)


def _snapshot_rename_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    path = str(tmp_path / "db.json")
    dump_json(cat, path)
    cat.update_object("alice", "Salary", 7777)
    with inject(point):
        with pytest.raises(InjectedFault):
            dump_json(cat, path)
    # The fault hit between tmp-write and rename: the original snapshot
    # is intact and loads cleanly (old-complete-or-new-complete, never torn).
    restored = load_json(path)
    assert restored.extent("Staff")[0]["Salary"] == 3000
    # The catalog itself was never touched by the failed dump.
    assert cat.extent("Staff")[0]["Salary"] == 7777
    dump_json(cat, path)
    assert load_json(path).extent("Staff")[0]["Salary"] == 7777


def _dirsync_scenario(tmp_path, point):
    # The fault hits after the atomic rename but before the directory
    # entry is durable: the snapshot file itself is complete either way,
    # so a load at any point sees old-complete or new-complete.
    cat = _catalog(tmp_path)
    path = str(tmp_path / "db.json")
    dump_json(cat, path)
    cat.update_object("alice", "Salary", 4444)
    with inject(point):
        with pytest.raises(InjectedFault):
            dump_json(cat, path)
    assert load_json(path).extent("Staff")[0]["Salary"] in (3000, 4444)
    assert cat.extent("Staff")[0]["Salary"] == 4444
    dump_json(cat, path)
    assert load_json(path).extent("Staff")[0]["Salary"] == 4444


def _server_conflict_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    with Server(cat) as server:
        client = server.connect()
        # An injected conflict at commit forces rollback + backoff +
        # retry; the second attempt (firing #2, not armed) commits.
        with inject(point, exc_type=ConflictError):
            client.run(lambda txn: txn.update_object("alice", "Salary", 1))
        assert server.stats.conflicts == 1
        assert server.stats.retries == 1
        assert cat.extent("Staff")[0]["Salary"] == 1
        # A non-retriable fault at the same point rolls back and surfaces.
        with inject(point):
            with pytest.raises(InjectedFault):
                client.run(
                    lambda txn: txn.update_object("alice", "Salary", 2))
        assert cat.extent("Staff")[0]["Salary"] == 1
    _assert_wal_replayable(cat)


def _server_queue_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with Server(cat) as server:
        client = server.connect()
        with inject(point, exc_type=OverloadedError):
            with pytest.raises(OverloadedError):
                client.run(
                    lambda txn: txn.update_object("alice", "Salary", 5))
        # Shed at admission: nothing was executed, nothing changed.
        assert _observe_catalog(cat) == before
        assert server.stats.shed == 1
        # The next submission is served normally.
        client.run(lambda txn: txn.update_object("alice", "Salary", 5))
        assert cat.extent("Staff")[0]["Salary"] == 5
    _assert_wal_replayable(cat)


def _server_worker_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    with Server(cat) as server:
        client = server.connect()
        # The worker that dequeues the request dies; the pool respawns a
        # replacement and re-queues the request, which then succeeds —
        # worker death is invisible to the client.
        with inject(point):
            client.run(lambda txn: txn.update_object("alice", "Salary", 8),
                       timeout=30)
        assert server.stats.worker_deaths == 1
        assert cat.extent("Staff")[0]["Salary"] == 8
    _assert_wal_replayable(cat)


def _proto_frame_scenario(tmp_path, point):
    # A fault between frame decode and dispatch must come back as a
    # *structured* error reply on a connection that stays usable, with
    # no catalog effect.
    from repro.client import Client
    from repro.server.protocol import ProtocolServer

    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with Server(cat) as server, ProtocolServer(server) as front:
        client = Client(*front.address)
        try:
            with inject(point):
                with pytest.raises(InjectedFault):
                    client.update_object("alice", "Salary", 6)
            assert _observe_catalog(cat) == before
            # The same pooled connection serves the retry.
            client.update_object("alice", "Salary", 6)
            assert cat.extent("Staff")[0]["Salary"] == 6
        finally:
            client.close()
    _assert_wal_replayable(cat)


def _proto_reply_scenario(tmp_path, point):
    # The lost-ack window: the update commits, then the reply write
    # faults (the client "disconnected" between commit and ack).  The
    # client's same-id retry must observe the committed outcome exactly
    # once — a dedup replay, never a second execution.
    from repro.client import Client
    from repro.server.protocol import ProtocolServer

    cat = _catalog(tmp_path)
    with Server(cat) as server, ProtocolServer(server) as front:
        client = Client(*front.address)
        try:
            with inject(point):
                client.update_object("alice", "Salary", 7)
            assert cat.extent("Staff")[0]["Salary"] == 7
            assert front.stats.deduped_replies == 1
            assert server.stats.committed == 1
        finally:
            client.close()
    _assert_wal_replayable(cat)


SCENARIOS = {
    "store.write": lambda tmp, p: _session_scenario(tmp, p),
    "journal.append": lambda tmp, p: _session_scenario(tmp, p),
    "budget.tick": lambda tmp, p: _session_scenario(
        tmp, p, budget=Budget(max_steps=10**9)),
    "wal.append": _wal_append_scenario,
    "wal.fsync": _wal_fsync_scenario,
    "snapshot.rename": _snapshot_rename_scenario,
    "persist.dirsync": _dirsync_scenario,
    "server.conflict": _server_conflict_scenario,
    "server.queue": _server_queue_scenario,
    "server.worker": _server_worker_scenario,
    "proto.frame": _proto_frame_scenario,
    "proto.reply": _proto_reply_scenario,
}


def test_matrix_covers_every_registered_point():
    assert set(SCENARIOS) == set(faults.POINTS)


@pytest.mark.parametrize("point", faults.POINTS)
def test_fault_leaves_state_consistent(point, tmp_path):
    SCENARIOS[point](tmp_path, point)


def test_nth_firing_injection(tmp_path):
    # Faults can target a later firing: the first write succeeds, the
    # second faults, and rollback still restores both.
    s = _session()
    with inject("store.write", at=2):
        with pytest.raises(InjectedFault):
            s.exec('val u1 = query(fn x => update(x, Salary, 1), joe) '
                   'val u2 = query(fn x => update(x, Salary, 2), joe)',
                   atomic=True)
    assert s.eval_py("query(fn x => x.Salary, joe)") == 2000


def test_unknown_point_rejected():
    with pytest.raises(ValueError):
        with inject("no.such.point"):
            pass  # pragma: no cover

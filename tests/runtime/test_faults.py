"""The fault-injection matrix.

For *every* registered injection point, a fault injected mid-operation
must leave the session/catalog observably consistent — bindings, types,
purity marks and store contents identical to the pre-transaction state —
and the WAL replayable.  The scenario table below is keyed by point name
and checked for exhaustiveness against :data:`repro.runtime.faults.POINTS`,
so wiring a new injection point into the runtime without adding a
consistency scenario fails this suite.
"""

import pytest

from repro import Budget, ConflictError, OverloadedError, Session
from repro.db.catalog import Catalog
from repro.db.persist import dump_json, load_json
from repro.db.wal import read_wal
from repro.runtime import InjectedFault, faults
from repro.runtime.faults import inject
from repro.server import Server


@pytest.fixture(autouse=True)
def _disarm():
    yield
    faults.reset()


def _session():
    s = Session()
    s.exec('val joe = IDView([Name = "Joe", Salary := 2000])')
    s.exec("fun count n = if n = 0 then 0 else count (n - 1)")
    return s


def _observe_session(s):
    return {
        "names": sorted(s._global_frame),
        "types": sorted(s.type_env.names()),
        "impure": s.purity.snapshot(),
        "allocations": s.machine.store.allocations,
        "salary": s.eval_py("query(fn x => x.Salary, joe)"),
    }


# The atomic program each session scenario interrupts: a store write, new
# allocations, a binding and enough evaluation steps to reach the
# budget-tick slow path (which runs every 256 steps).
_PROGRAM = ('query(fn x => update(x, Salary, 9), joe) '
            'val tmp = [a := 1, b := 2] '
            'val steps = count 200')


def _session_scenario(tmp_path, point, budget=None):
    s = _session()
    before = _observe_session(s)
    with inject(point):
        with pytest.raises(InjectedFault):
            s.exec(_PROGRAM, atomic=True, budget=budget)
    assert _observe_session(s) == before
    # The session stays fully usable: the same program now succeeds.
    s.exec(_PROGRAM, atomic=True)
    assert s.eval_py("query(fn x => x.Salary, joe)") == 9


def _catalog(tmp_path):
    cat = Catalog(wal=str(tmp_path / "cat.wal"))
    cat.new_object("alice", Name="Alice", mutable={"Salary": 3000})
    cat.new_object("zoe", Name="Zoe", mutable={"Salary": 50})
    cat.define_class("Staff", own=["alice"])
    return cat


def _observe_catalog(cat):
    return {
        "objects": sorted(cat.objects),
        "classes": {name: list(spec.own) for name, spec in
                    cat.classes.items()},
        "extent": cat.extent("Staff"),
        "session_names": sorted(cat.session._global_frame),
    }


def _assert_wal_replayable(cat):
    """The WAL must replay to the last complete mutation, torn tail or
    not — recovery never errors and reproduces a consistent catalog."""
    recovered = Catalog.recover(cat.wal.path)
    assert sorted(recovered.classes) == sorted(cat.classes)
    assert recovered.extent("Staff") is not None


def _wal_append_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with inject(point):
        with pytest.raises(InjectedFault):
            cat.insert("Staff", "zoe")
    # The op rolled back everywhere: specs, session bindings, extents.
    assert _observe_catalog(cat) == before
    _assert_wal_replayable(cat)
    # And the catalog still works.
    cat.insert("Staff", "zoe")
    assert len(cat.extent("Staff")) == 2


def _wal_fsync_scenario(tmp_path, point):
    # Simulate the OS failing the fsync after the bytes were written —
    # the in-memory op rolls back; the WAL keeps the (complete) record,
    # i.e. the log may run ahead of memory by one record, never behind.
    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with inject(point, exc_type=OSError):
        with pytest.raises(OSError):
            cat.update_object("alice", "Salary", 9999)
    assert _observe_catalog(cat) == before
    records, torn = read_wal(cat.wal.path)
    assert not torn
    recovered = Catalog.recover(cat.wal.path)
    # Replay applies the logged-but-unacknowledged update (redo semantics).
    assert recovered.extent("Staff")[0]["Salary"] in (3000, 9999)


def _snapshot_rename_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    path = str(tmp_path / "db.json")
    dump_json(cat, path)
    cat.update_object("alice", "Salary", 7777)
    with inject(point):
        with pytest.raises(InjectedFault):
            dump_json(cat, path)
    # The fault hit between tmp-write and rename: the original snapshot
    # is intact and loads cleanly (old-complete-or-new-complete, never torn).
    restored = load_json(path)
    assert restored.extent("Staff")[0]["Salary"] == 3000
    # The catalog itself was never touched by the failed dump.
    assert cat.extent("Staff")[0]["Salary"] == 7777
    dump_json(cat, path)
    assert load_json(path).extent("Staff")[0]["Salary"] == 7777


def _dirsync_scenario(tmp_path, point):
    # The fault hits after the atomic rename but before the directory
    # entry is durable: the snapshot file itself is complete either way,
    # so a load at any point sees old-complete or new-complete.
    cat = _catalog(tmp_path)
    path = str(tmp_path / "db.json")
    dump_json(cat, path)
    cat.update_object("alice", "Salary", 4444)
    with inject(point):
        with pytest.raises(InjectedFault):
            dump_json(cat, path)
    assert load_json(path).extent("Staff")[0]["Salary"] in (3000, 4444)
    assert cat.extent("Staff")[0]["Salary"] == 4444
    dump_json(cat, path)
    assert load_json(path).extent("Staff")[0]["Salary"] == 4444


def _server_conflict_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    with Server(cat) as server:
        client = server.connect()
        # An injected conflict at commit forces rollback + backoff +
        # retry; the second attempt (firing #2, not armed) commits.
        with inject(point, exc_type=ConflictError):
            client.run(lambda txn: txn.update_object("alice", "Salary", 1))
        assert server.stats.conflicts == 1
        assert server.stats.retries == 1
        assert cat.extent("Staff")[0]["Salary"] == 1
        # A non-retriable fault at the same point rolls back and surfaces.
        with inject(point):
            with pytest.raises(InjectedFault):
                client.run(
                    lambda txn: txn.update_object("alice", "Salary", 2))
        assert cat.extent("Staff")[0]["Salary"] == 1
    _assert_wal_replayable(cat)


def _server_queue_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with Server(cat) as server:
        client = server.connect()
        with inject(point, exc_type=OverloadedError):
            with pytest.raises(OverloadedError):
                client.run(
                    lambda txn: txn.update_object("alice", "Salary", 5))
        # Shed at admission: nothing was executed, nothing changed.
        assert _observe_catalog(cat) == before
        assert server.stats.shed == 1
        # The next submission is served normally.
        client.run(lambda txn: txn.update_object("alice", "Salary", 5))
        assert cat.extent("Staff")[0]["Salary"] == 5
    _assert_wal_replayable(cat)


def _server_worker_scenario(tmp_path, point):
    cat = _catalog(tmp_path)
    with Server(cat) as server:
        client = server.connect()
        # The worker that dequeues the request dies; the pool respawns a
        # replacement and re-queues the request, which then succeeds —
        # worker death is invisible to the client.
        with inject(point):
            client.run(lambda txn: txn.update_object("alice", "Salary", 8),
                       timeout=30)
        assert server.stats.worker_deaths == 1
        assert cat.extent("Staff")[0]["Salary"] == 8
    _assert_wal_replayable(cat)


def _proto_frame_scenario(tmp_path, point):
    # A fault between frame decode and dispatch must come back as a
    # *structured* error reply on a connection that stays usable, with
    # no catalog effect.
    from repro.client import Client
    from repro.server.protocol import ProtocolServer

    cat = _catalog(tmp_path)
    before = _observe_catalog(cat)
    with Server(cat) as server, ProtocolServer(server) as front:
        client = Client(*front.address)
        try:
            with inject(point):
                with pytest.raises(InjectedFault):
                    client.update_object("alice", "Salary", 6)
            assert _observe_catalog(cat) == before
            # The same pooled connection serves the retry.
            client.update_object("alice", "Salary", 6)
            assert cat.extent("Staff")[0]["Salary"] == 6
        finally:
            client.close()
    _assert_wal_replayable(cat)


def _proto_reply_scenario(tmp_path, point):
    # The lost-ack window: the update commits, then the reply write
    # faults (the client "disconnected" between commit and ack).  The
    # client's same-id retry must observe the committed outcome exactly
    # once — a dedup replay, never a second execution.
    from repro.client import Client
    from repro.server.protocol import ProtocolServer

    cat = _catalog(tmp_path)
    with Server(cat) as server, ProtocolServer(server) as front:
        client = Client(*front.address)
        try:
            with inject(point):
                client.update_object("alice", "Salary", 7)
            assert cat.extent("Staff")[0]["Salary"] == 7
            assert front.stats.deduped_replies == 1
            assert server.stats.committed == 1
        finally:
            client.close()
    _assert_wal_replayable(cat)


# -- cross-shard two-phase commit ------------------------------------------
#
# Every 2pc.* point fires twice (before/after its step), so ``at=1`` arms
# the crash-before window and ``at=2`` the crash-after window.  For each
# window the table below pins the *only* acceptable outcome — and whatever
# the window, the invariant is commit-everywhere or abort-everywhere:
# after the fault, both shards' objects must agree, in memory and after a
# fresh WAL recovery.  (``2pc.lane_acquire`` fires twice per lane, so its
# two-shard matrix has four windows, all pre-execution aborts.)

_2PC_WINDOWS = {
    "2pc.lane_acquire": {1: ("abort", []), 2: ("abort", []),
                         3: ("abort", []), 4: ("abort", [])},
    "2pc.prepare": {1: ("abort", []), 2: ("abort", ["abort"])},
    "2pc.decide": {1: ("abort", ["abort"]), 2: ("commit", ["commit"])},
    "2pc.ack": {1: ("commit", ["commit"]), 2: ("commit", [])},
}


def _two_phase_server(tmp_path, tag):
    from repro.analysis.partition import partition_workload
    from repro.analysis.workload import build_conflict_graph
    from repro.server import ServerConfig

    wal = str(tmp_path / f"2pc-{tag}.wal")
    cat = Catalog(wal=wal)
    cat.new_object("joe", Name="Joe", mutable={"Salary": 0})
    cat.new_object("amy", Name="Amy", mutable={"Salary": 0})
    rmw = "query(fn x => update(x, Salary, x.Salary + 1), {n})"
    graph = build_conflict_graph(
        {f"t_{n}": rmw.format(n=n) for n in ("joe", "amy")},
        session=cat.session)
    plan = partition_workload(graph, shards=2, session=cat.session)
    return cat, ServerConfig(partitions=plan), wal


def _xfer(value):
    """A cross-shard transaction: both writes commit or neither does."""
    from repro.analysis.regions import FootprintSummary

    names = frozenset({"joe", "amy"})

    def body(txn):
        txn.update_object("joe", "Salary", value)
        txn.update_object("amy", "Salary", value)

    return body, FootprintSummary(names, names)


def _salaries(session):
    return {n: session.eval_py(f"query(fn x => x.Salary, {n})")
            for n in ("joe", "amy")}


def _two_phase_scenario(tmp_path, point):
    from repro.server import Server
    from repro.server.recover import recover

    for at, (outcome, in_doubt) in _2PC_WINDOWS[point].items():
        cat, cfg, wal = _two_phase_server(tmp_path, f"{point}-{at}")
        body, footprint = _xfer(1)
        with Server(cat, config=cfg) as server:
            client = server.connect()
            with inject(point, at=at):
                if outcome == "abort":
                    with pytest.raises(InjectedFault):
                        client.run(body, footprint=footprint)
                else:
                    # The commit decision was durable before the fault:
                    # the client must see success (the coordinator
                    # swallows post-decide failures and recovery
                    # finishes the job).
                    client.run(body, footprint=footprint)
            # Never a mixed state in memory, and the exact outcome the
            # window demands.
            live = _salaries(cat.session)
            assert live["joe"] == live["amy"], (point, at, live)
            assert live["joe"] == (1 if outcome == "commit" else 0)
            stats = server.stats.snapshot()
            assert stats["two_phase_commits"] == \
                (1 if outcome == "commit" else 0)
            # The server survives the fault: gates were released, a
            # clean cross-shard commit goes through.
            body2, fp2 = _xfer(5)
            client.run(body2, footprint=fp2)
            assert _salaries(cat.session) == {"joe": 5, "amy": 5}
        # A fresh recovery over the same WAL resolves any in-doubt
        # transaction the window left behind — to the same outcome.
        recovered, report = recover(wal)
        vals = _salaries(recovered.session)
        assert vals == {"joe": 5, "amy": 5}
        assert [t["resolution"] for t in report.in_doubt] == in_doubt
        for t in report.in_doubt:
            assert t["shards"] == [0, 1]
        recovered.wal.close()


SCENARIOS = {
    "store.write": lambda tmp, p: _session_scenario(tmp, p),
    "journal.append": lambda tmp, p: _session_scenario(tmp, p),
    "budget.tick": lambda tmp, p: _session_scenario(
        tmp, p, budget=Budget(max_steps=10**9)),
    "wal.append": _wal_append_scenario,
    "wal.fsync": _wal_fsync_scenario,
    "snapshot.rename": _snapshot_rename_scenario,
    "persist.dirsync": _dirsync_scenario,
    "server.conflict": _server_conflict_scenario,
    "server.queue": _server_queue_scenario,
    "server.worker": _server_worker_scenario,
    "proto.frame": _proto_frame_scenario,
    "proto.reply": _proto_reply_scenario,
    "2pc.lane_acquire": _two_phase_scenario,
    "2pc.prepare": _two_phase_scenario,
    "2pc.decide": _two_phase_scenario,
    "2pc.ack": _two_phase_scenario,
}


def test_matrix_covers_every_registered_point():
    # Auto-discovered from the runtime's own registry: registering a new
    # injection point without a matching consistency scenario (or a
    # 2pc.* point without a crash-before/crash-after window table) fails
    # here before the point ships untested.
    assert set(SCENARIOS) == set(faults.registered_points())
    assert set(_2PC_WINDOWS) == {p for p in faults.registered_points()
                                 if p.startswith("2pc.")}


@pytest.mark.parametrize("point", faults.registered_points())
def test_fault_leaves_state_consistent(point, tmp_path):
    SCENARIOS[point](tmp_path, point)


def test_nth_firing_injection(tmp_path):
    # Faults can target a later firing: the first write succeeds, the
    # second faults, and rollback still restores both.
    s = _session()
    with inject("store.write", at=2):
        with pytest.raises(InjectedFault):
            s.exec('val u1 = query(fn x => update(x, Salary, 1), joe) '
                   'val u2 = query(fn x => update(x, Salary, 2), joe)',
                   atomic=True)
    assert s.eval_py("query(fn x => x.Salary, joe)") == 2000


def test_unknown_point_rejected():
    with pytest.raises(ValueError):
        with inject("no.such.point"):
            pass  # pragma: no cover

"""Execution budgets: fuel, allocation caps and wall-clock deadlines."""

import time

import pytest

from repro import Budget, BudgetExceededError, Session
from repro.errors import ResourceError


@pytest.fixture()
def s():
    session = Session()
    session.exec("fun loop x = loop x")
    return session


def test_budget_needs_a_limit():
    with pytest.raises(ValueError):
        Budget()


def test_nonterminating_fix_raises_within_step_budget(s):
    budget = Budget(max_steps=50_000)
    with pytest.raises(BudgetExceededError) as exc:
        s.exec("loop 1", budget=budget)
    assert exc.value.dimension == "steps"
    assert budget.steps <= 50_000 + 1


def test_session_usable_after_budget_blow(s):
    with pytest.raises(BudgetExceededError):
        s.exec("loop 1", budget=Budget(max_steps=10_000))
    # The acceptance bar: the same session evaluates subsequent programs
    # correctly afterwards, with no budget left installed.
    assert s.machine.budget is None
    assert s.eval_py("1 + 2") == 3
    s.exec('val v = [a := 41] val u = update(v, a, 42)')
    assert s.eval_py("v.a") == 42


def test_budget_error_is_resource_error(s):
    with pytest.raises(ResourceError):
        s.exec("loop 1", budget=Budget(max_steps=5_000))


def test_allocation_budget():
    s = Session()
    s.exec("fun alloc n = if n = 0 then 0 else "
           "let r = [a := n] in alloc (n - 1) end")
    with pytest.raises(BudgetExceededError) as exc:
        s.exec("alloc 10000", budget=Budget(max_allocations=500))
    assert exc.value.dimension == "allocations"


def test_wall_clock_budget(s):
    with pytest.raises(BudgetExceededError) as exc:
        s.exec("loop 1", budget=Budget(max_seconds=0.05))
    assert exc.value.dimension == "seconds"


def test_budget_within_transaction_rolls_back(s):
    s.exec("val r = [a := 1]")
    with pytest.raises(BudgetExceededError):
        with s.transaction(budget=Budget(max_steps=10_000)):
            s.exec("update(r, a, 99)")
            s.exec("loop 1")
    assert s.eval_py("r.a") == 1
    assert s.machine.budget is None


def test_generous_budget_does_not_interfere(s):
    s.exec("fun count n = if n = 0 then 0 else count (n - 1)")
    assert s.exec("count 100", budget=Budget(max_steps=10**9)).value == 0


def test_budget_is_reusable(s):
    budget = Budget(max_steps=100_000)
    s.exec("fun count n = if n = 0 then 0 else count (n - 1)")
    s.exec("count 50", budget=budget)
    first = budget.steps
    s.exec("count 50", budget=budget)
    assert budget.steps == first  # start() re-armed the fuel counter


# -- the queue-wait dimension (serving) -------------------------------------

def test_queue_wait_alone_is_a_valid_limit():
    b = Budget(max_queue_wait=0.5)
    assert b.queue_wait() == 0.0
    assert not b.queue_expired()


def test_note_enqueued_anchors_the_wait():
    b = Budget(max_queue_wait=1.0)
    b.note_enqueued(now=100.0)
    assert b.queue_wait(now=100.25) == 0.25
    assert not b.queue_expired(now=100.9)
    assert b.queue_expired(now=101.1)


def test_wall_clock_budget_counts_from_enqueue(s):
    # A request that waited most of its wall-clock budget in the queue
    # has only the remainder left for evaluation: the deadline anchors
    # at enqueue time, not at start().
    s.exec("fun loop n = loop (n + 1)")
    b = Budget(max_seconds=0.25)
    b.note_enqueued(now=time.monotonic() - 0.2)  # 0.2s already spent queued
    t0 = time.perf_counter()
    with pytest.raises(BudgetExceededError) as exc:
        s.exec("loop 1", budget=b)
    assert exc.value.dimension == "seconds"
    assert time.perf_counter() - t0 < 0.2  # far less than the full 0.25s


def test_deadline_spent_entirely_in_queue_counts_as_expired():
    b = Budget(max_seconds=0.1)
    b.note_enqueued(now=50.0)
    assert b.queue_expired(now=50.2)  # max_seconds doubles as the bound


def test_queue_wait_does_not_leak_into_direct_use(s):
    # A budget never enqueued behaves exactly as before: deadline from
    # start() time.
    s.exec("fun count n = if n = 0 then 0 else count (n - 1)")
    assert s.exec("count 100", budget=Budget(max_seconds=30.0)).value == 0

"""Figure 5 / Section 4.4 conformance: the shape of the class translation.

Checks the structure of ``tr(class ...)``, ``tr(c-query)``, ``tr(insert)``,
``tr(delete)`` and the recursive ``f_i`` construction, in the *literal*
(Figure 5 verbatim) mode; the repaired mode differs only in reading
``OwnExt`` through a fix-bound self reference, which is also asserted.
"""

from repro.classes.translate import translate_classes
from repro.core import terms as T
from repro.syntax.parser import parse_expression


def tr(src: str, repaired: bool = False) -> T.Term:
    return translate_classes(parse_expression(src), repaired=repaired)


def unlet(term: T.Term) -> T.Term:
    while isinstance(term, T.Let):
        term = term.body
    return term


def spine_head(term: T.Term) -> T.Term:
    while isinstance(term, T.App):
        term = term.fn
    return term


def test_class_record_shape_literal():
    # tr(class S ...) = [OwnExt := S, Ext = fn () => union(S, ...)]
    out = unlet(tr("class {} includes C as f where p end"))
    assert isinstance(out, T.RecordExpr)
    own, ext = out.fields
    assert own.label == "OwnExt" and own.mutable
    assert ext.label == "Ext" and not ext.mutable
    assert isinstance(ext.expr, T.Lam)


def test_class_record_shape_repaired_uses_fix():
    out = unlet(tr("class {} includes C as f where p end", repaired=True))
    assert isinstance(out, T.Fix)
    rec = out.body
    assert isinstance(rec, T.RecordExpr)
    assert [f.label for f in rec.fields] == ["OwnExt", "Ext"]


def test_ext_body_unions_own_with_inclusions():
    out = unlet(tr("class {} includes C as f where p end"))
    ext_lam = out.fields[1].expr
    body = ext_lam.body
    # skip the unit-pinning let
    while isinstance(body, T.Let):
        body = body.body
    head = spine_head(body)
    assert isinstance(head, T.Var) and head.name == "union"


def test_no_includes_ext_is_own_only():
    out = unlet(tr("class {} end"))
    body = out.fields[1].expr.body
    while isinstance(body, T.Let):
        body = body.body
    assert isinstance(body, T.Var)  # the let-bound S, no union


def test_inclusion_is_select_over_intersect():
    # the inclusion reduces to a hom (select) whose set argument forces
    # (tr(C).Ext)()
    out = unlet(tr("class {} includes C as f where p end"))
    body = out.fields[1].expr.body
    while isinstance(body, T.Let):
        body = body.body
    # union(own, select-hom(...))
    inclusion = body.arg
    head = spine_head(inclusion)
    assert isinstance(head, T.Var) and head.name == "hom"
    # the hom's set argument is (C.Ext) ()
    hom_set_arg = inclusion.fn.fn.fn.arg
    assert isinstance(hom_set_arg, T.App)
    assert isinstance(hom_set_arg.arg, T.Unit)
    forced = hom_set_arg.fn
    assert isinstance(forced, T.Dot) and forced.label == "Ext"


def test_cquery_equation():
    # tr(c-query(e, C)) = tr(e) ((tr(C).Ext)())
    out = tr("c-query(f, C)")
    assert isinstance(out, T.App)
    assert isinstance(out.fn, T.Var) and out.fn.name == "f"
    forced = out.arg
    assert isinstance(forced, T.App) and isinstance(forced.arg, T.Unit)
    assert isinstance(forced.fn, T.Dot) and forced.fn.label == "Ext"


def test_insert_equation():
    # tr(insert(e, C)) = update(c, OwnExt, union(c.OwnExt, {tr e}))
    out = tr("insert(o, C)")
    assert isinstance(out, T.Let)
    upd = out.body
    assert isinstance(upd, T.Update) and upd.label == "OwnExt"
    head = spine_head(upd.value)
    assert isinstance(head, T.Var) and head.name == "union"
    singleton = upd.value.arg
    assert isinstance(singleton, T.SetExpr) and len(singleton.elems) == 1


def test_delete_equation():
    # tr(delete(e, C)) = update(c, OwnExt, remove(c.OwnExt, {tr e}))
    out = tr("delete(o, C)")
    upd = out.body
    assert isinstance(upd, T.Update) and upd.label == "OwnExt"
    head = spine_head(upd.value)
    assert isinstance(head, T.Var) and head.name == "remove"


REC = ("let A = class {} includes B as f where p end "
       "and B = class {} includes A as g where q end in A end")


def test_recursive_translation_builds_function_family():
    # one fix-bound record holds f_A and f_B (literal mode)
    out = tr(REC)
    while isinstance(out, T.Let) and not isinstance(out.bound, T.Fix):
        out = out.body
    assert isinstance(out.bound, T.Fix)
    labels = [f.label for f in out.bound.body.fields]
    assert labels == ["f_A", "f_B"]


def test_recursive_sources_are_guarded_by_member():
    # inside f_A, the B source is: if member(2, L) then {} else f_B(...)()
    out = tr(REC)
    text = repr(out)
    assert "member" in text
    assert "union(" in text or "union " in text
    # indices 1 and 2 appear as the L-set elements
    assert "{2}" in text and "{1}" in text


def test_recursive_class_records_literal_shape():
    # let A = [OwnExt := sA, Ext = (F.f_A {1})] in ...
    out = tr(REC)
    # walk to the binding of A (after the own-extent and fix lets)
    t = out
    while isinstance(t, T.Let):
        if t.name == "A":
            rec = t.bound
            assert isinstance(rec, T.RecordExpr)
            ext = rec.fields[1].expr
            # partial application (F.f_A) {1}
            assert isinstance(ext, T.App)
            assert isinstance(ext.arg, T.SetExpr)
            return
        t = t.body
    raise AssertionError("binding for A not found")


def test_repaired_recursive_classes_live_in_the_fix():
    out = tr(REC, repaired=True)
    t = out
    while isinstance(t, T.Let) and not isinstance(t.bound, T.Fix):
        t = t.body
    labels = [f.label for f in t.bound.body.fields]
    assert labels == ["f_A", "f_B", "c_A", "c_B"]


def test_class_free_output():
    from repro.core.terms import (CQuery, ClassExpr, Delete, Insert,
                                  LetClasses, iter_subterms)

    def check(term):
        assert not isinstance(
            term, (ClassExpr, CQuery, Insert, Delete, LetClasses))
        for sub in iter_subterms(term):
            check(sub)

    for repaired in (False, True):
        check(tr(REC, repaired=repaired))
        check(tr("insert(o, class {} end)", repaired=repaired))

"""Figure 1 conformance: each kinding/typing rule exercised in isolation.

The kinding judgement ``K |- tau :: K`` is checked directly through
:mod:`repro.core.kinds`; the typing rules through minimal programs whose
derivation uses exactly the rule under test.
"""

import pytest

from repro.core.kinds import has_kind
from repro.core.types import (BOOL, FieldReq, FieldType, INT, KRecord,
                              STRING, TFun, TRecord, TSet, TVar, U)
from repro.errors import KindError, TypeInferenceError
from tests.conftest import typeof


# -- kinding: K |- tau :: U --------------------------------------------------

def test_rule_kind_u_for_all_types():
    samples = [INT, TFun(INT, BOOL), TSet(STRING),
               TRecord({"x": FieldType(INT, True)}), TVar(1)]
    assert all(has_kind(t, U) for t in samples)


# -- kinding: K |- t :: [[F...]] via the kind assignment -----------------------

def test_rule_kind_var_subsumption_immutable_from_mutable():
    # K(t) = [[l := tau, ...]] satisfies the ask [[l = tau]] (F < F')
    t = TVar(1, KRecord({"l": FieldReq(INT, True)}))
    assert has_kind(t, KRecord({"l": FieldReq(INT, False)}))


def test_rule_kind_var_no_strengthening():
    # K(t) = [[l = tau]] does NOT satisfy [[l := tau]]
    t = TVar(1, KRecord({"l": FieldReq(INT, False)}))
    assert not has_kind(t, KRecord({"l": FieldReq(INT, True)}))


# -- kinding: K |- [F'...] :: [[F...]] ------------------------------------------

def test_rule_kind_record_width_subtyping_of_kinds():
    wide = TRecord({"a": FieldType(INT, False), "b": FieldType(BOOL, True)})
    assert has_kind(wide, KRecord({"a": FieldReq(INT, False)}))
    assert has_kind(wide, KRecord({"b": FieldReq(BOOL, True)}))
    assert has_kind(wide, KRecord({"b": FieldReq(BOOL, False)}))
    assert not has_kind(wide, KRecord({"c": FieldReq(INT, False)}))


# -- rule (rec): record formation, including L-value absorption ----------------

def test_rule_rec_plain():
    assert typeof("[a = 1, b := true]") == "[a = int, b := bool]"


def test_rule_rec_lvalue_into_mutable():
    assert typeof("let r = [s := 1] in [m := extract(r, s)] end") == \
        "[m := int]"


def test_rule_rec_lvalue_into_immutable():
    assert typeof("let r = [s := 1] in [m = extract(r, s)] end") == \
        "[m = int]"


# -- rule (dot) ---------------------------------------------------------------

def test_rule_dot_immutable_requirement_only():
    # reading never demands mutability
    assert typeof("fn x => x.l") == \
        "forall t1::U. forall t2::[[l = t1]]. t2 -> t1"


def test_rule_dot_rvalue_of_mutable_field():
    # extraction of a mutable field yields the R-value (an ordinary value)
    assert typeof("[m := 1].m + 1") == "int"


# -- rule (ext) ---------------------------------------------------------------

def test_rule_ext_requires_mutable():
    with pytest.raises(KindError):
        typeof("let r = [s = 1] in [m := extract(r, s)] end")


def test_rule_ext_produces_lvalue_type_internally():
    # L(tau) is second class: extract outside field position is rejected
    with pytest.raises(TypeInferenceError):
        typeof("let r = [s := 1] in extract(r, s) end")


def test_rule_ext_polymorphic_kind():
    assert typeof("fn x => [m := extract(x, s)]") == \
        "forall t1::U. forall t2::[[s := t1]]. t2 -> [m := t1]"


# -- rule (upd) ---------------------------------------------------------------

def test_rule_upd_result_unit():
    assert typeof("update([m := 1], m, 2)") == "unit"


def test_rule_upd_value_type_must_match():
    with pytest.raises(Exception):
        typeof('update([m := 1], m, "x")')


def test_rule_upd_requires_mutable():
    with pytest.raises(KindError):
        typeof("update([m = 1], m, 2)")


# -- rules (gen) and (inst) -----------------------------------------------------

def test_rule_gen_quantifies_kinded_variables():
    assert typeof("let get = fn x => x.f in get end") == \
        "forall t1::U. forall t2::[[f = t1]]. t2 -> t1"


def test_rule_inst_fresh_per_use():
    # two instantiations at incompatible field types coexist
    assert typeof("let get = fn x => x.f in "
                  "(get [f = 1], get [f = true]) end") == \
        "[1 = int, 2 = bool]"


def test_rule_inst_respects_kind():
    # instantiating at a record lacking the field fails
    with pytest.raises(KindError):
        typeof("let get = fn x => x.f in get [g = 1] end")


def test_rule_gen_blocked_for_expansive_bindings():
    # records allocate: the binding stays monomorphic (value restriction)
    with pytest.raises(Exception):
        typeof("let p = [f = fn x => x] in "
               "((p.f) 1, (p.f) true) end")


# -- ground mutable fields (the soundness restriction of Section 2) -------------

def test_mutable_polymorphism_is_fenced():
    # the classic unsoundness: a polymorphic mutable cell; must be rejected
    # or monomorphized.  Here {} : {t} stored in a mutable field of an
    # expansive record binding stays monomorphic, so using it at two types
    # fails.
    with pytest.raises(Exception):
        typeof("let r = [cell := {}] in "
               "let u = update(r, cell, {1}) in "
               "update(r, cell, {true}) end end")

"""Figures 2, 4 and 6 conformance: object and class typing rules, each
with the exact premises the figure states."""

import pytest

from repro.errors import (KindError, RecursiveClassError,
                          UnificationError)
from tests.conftest import typeof


# -- Figure 2: (id) ------------------------------------------------------------

def test_rule_id_premise_record_kind():
    # K |- tau :: [[ ]] — only record(-kinded) types may become objects
    assert typeof("IDView([x = 1])") == "obj([x = int])"
    for bad in ("IDView(1)", "IDView({1})", "IDView(fn x => x)",
                "IDView(())"):
        with pytest.raises(KindError):
            typeof(bad)


def test_rule_id_variable_premise():
    assert typeof("fn r => IDView(r)") == "forall t1::[[]]. t1 -> obj(t1)"


# -- Figure 2: (vcomp) ---------------------------------------------------------

def test_rule_vcomp_composes_types():
    # e1 : obj(t1), e2 : t1 -> t2 |- (e1 as e2) : obj(t2)
    assert typeof("fn o => (o as fn x => (x.a, x.a))") == (
        "forall t1::U. forall t2::[[a = t1]]. "
        "obj(t2) -> obj([1 = t1, 2 = t1])")


def test_rule_vcomp_result_type_unconstrained():
    # tau2 need not be a record
    assert typeof("(IDView([a = 1]) as fn x => x.a > 0)") == "obj(bool)"


def test_rule_vcomp_domain_mismatch():
    with pytest.raises(UnificationError):
        typeof("(IDView([a = 1]) as fn x => (x : bool))")


# -- Figure 2: (query) ----------------------------------------------------------

def test_rule_query_types():
    assert typeof("fn f => fn o => query(f, o)") == (
        "forall t1::U. forall t2::U. (t1 -> t2) -> obj(t1) -> t2")


def test_rule_query_connects_view_type():
    with pytest.raises(Exception):
        typeof("query(fn x => x + 1, IDView([a = 1]))")  # view is a record


# -- Figure 2: (fuse) ------------------------------------------------------------

def test_rule_fuse_product_type():
    assert typeof("fn a => fn b => fuse(a, b)") == (
        "forall t1::U. forall t2::U. obj(t1) -> obj(t2) -> "
        "{obj([1 = t1, 2 = t2])}")


# -- Figure 2: (vrel) -------------------------------------------------------------

def test_rule_vrel_record_of_view_types():
    assert typeof("fn a => fn b => relobj(x = a, y = b)") == (
        "forall t1::U. forall t2::U. obj(t1) -> obj(t2) -> "
        "obj([x = t1, y = t2])")


# -- Figure 4: (class) -------------------------------------------------------------

def test_rule_class_own_extent_premise():
    # S : {obj(tau)}
    with pytest.raises(UnificationError):
        typeof("class {1} end")


def test_rule_class_view_premise_single_source():
    # e_i : tau_i -> tau  (no 1-tuple for m = 1)
    assert typeof("fn C => class {} includes C as fn x => (x.n) + 0 "
                  "where fn o => true end") == \
        "forall t1::[[n = int]]. class(t1) -> class(int)"


def test_rule_class_view_premise_product_source():
    t = typeof("fn C1 => fn C2 => class {} includes C1, C2 "
               "as fn p => (p.1, p.2) where fn o => true end")
    assert t == ("forall t1::U. forall t2::U. class(t1) -> class(t2) -> "
                 "class([1 = t1, 2 = t2])")


def test_rule_class_pred_premise_obj_to_bool():
    # p_i : obj(tau_1 x ... x tau_m) -> bool
    with pytest.raises(UnificationError):
        typeof("fn C => class {} includes C as fn x => x "
               "where fn o => o end")  # obj(t) is not bool


def test_rule_class_pred_receives_object_not_record():
    # the predicate must query; direct field access on the object fails
    with pytest.raises(KindError):
        typeof("fn C => class {} includes C as fn x => x "
               "where fn o => o.Sex = \"f\" end")


# -- Figure 4: (cquery), (insert), (delete) ---------------------------------------

def test_rule_cquery_types():
    assert typeof("fn e => fn C => c-query(e, C)") == (
        "forall t1::U. forall t2::U. ({obj(t1)} -> t2) -> class(t1) -> t2")


def test_rule_insert_delete_types():
    assert typeof("fn e => fn C => insert(e, C)") == \
        "forall t1::U. obj(t1) -> class(t1) -> unit"
    assert typeof("fn e => fn C => delete(e, C)") == \
        "forall t1::U. obj(t1) -> class(t1) -> unit"


# -- Figure 6: (rec-class) ----------------------------------------------------------

def test_rule_rec_class_types_flow_through_cycle():
    # A's element type is forced by B's include view and vice versa
    t = typeof(
        "let A = class {} includes B as fn x => [n = (x.n) * 2] "
        "where fn o => true end "
        "and B = class {} includes A as fn x => [n = (x.n) + 1] "
        "where fn o => true end "
        "in (A, B) end")
    assert t == "[1 = class([n = int]), 2 = class([n = int])]"


def test_rule_rec_class_body_env_includes_bindings():
    t = typeof(
        "let A = class {IDView([n = 1])} end "
        "in c-query(fn S => size(S), A) end")
    assert t == "int"


def test_rule_rec_class_restriction_enforced_by_typing():
    # the restriction check runs during inference (rule side condition)
    with pytest.raises(RecursiveClassError):
        typeof("let A = class {} includes B as fn x => x "
               "where fn o => c-query(fn S => true, A) end "
               "and B = class {} end in 0 end")


def test_rule_rec_class_identifiers_monomorphic_in_body():
    # class bindings are monomorphic: one element type per identifier
    with pytest.raises(Exception):
        typeof("let A = class {} end in "
               "let u = insert(IDView([x = 1]), A) in "
               "insert(IDView([y = 1]), A) end end")

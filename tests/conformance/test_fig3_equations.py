"""Figure 3 conformance: the shape of each translation equation.

Beyond behavioural agreement (tested elsewhere), these tests check that
the *structure* of the translated terms matches the figure's right-hand
sides: ``tr(IDView(e)) = (e, fn x => x)``, composition wraps the inner
view, ``fuse`` guards on raw equality, ``relobj`` rebuilds raw and view
records field by field.
"""

from repro.core import terms as T
from repro.objects.translate import translate_objects
from repro.syntax.parser import parse_expression


def tr(src: str) -> T.Term:
    return translate_objects(parse_expression(src))


def unlet(term: T.Term) -> T.Term:
    """Skip the hygiene let-bindings the implementation inserts."""
    while isinstance(term, T.Let):
        term = term.body
    return term


def test_idview_equation():
    # tr(IDView(e)) = (e, fn x => x)
    out = unlet(tr("IDView([A = 1])"))
    assert isinstance(out, T.RecordExpr)
    raw, view = out.fields
    assert raw.label == "1" and view.label == "2"
    assert isinstance(raw.expr, T.RecordExpr)  # e itself
    lam = view.expr
    assert isinstance(lam, T.Lam)
    assert isinstance(lam.body, T.Var) and lam.body.name == lam.param


def test_asview_equation():
    # tr(e1 as e2) = let v = tr(e1) in (v.1, fn x => tr(e2) (v.2 x))
    out = tr("(o as f)")
    assert isinstance(out, T.Let)
    bound_var = out.name
    pair = unlet(out)
    assert isinstance(pair, T.RecordExpr)
    first = pair.fields[0].expr
    assert isinstance(first, T.Dot) and first.label == "1"
    assert isinstance(first.expr, T.Var) and first.expr.name == bound_var
    lam = pair.fields[1].expr
    assert isinstance(lam, T.Lam)
    # body: f (v.2 x)
    body = lam.body
    assert isinstance(body, T.App)
    assert isinstance(body.fn, T.Var) and body.fn.name == "f"
    inner = body.arg
    assert isinstance(inner, T.App)
    assert isinstance(inner.fn, T.Dot) and inner.fn.label == "2"
    assert isinstance(inner.arg, T.Var) and inner.arg.name == lam.param


def test_query_equation():
    # tr(query(e1, e2)) = let v = tr(e2) in tr(e1) (v.2 v.1)
    out = tr("query(f, o)")
    assert isinstance(out, T.Let)
    body = out.body
    assert isinstance(body, T.App)
    assert isinstance(body.fn, T.Var) and body.fn.name == "f"
    mat = body.arg
    assert isinstance(mat, T.App)
    assert isinstance(mat.fn, T.Dot) and mat.fn.label == "2"
    assert isinstance(mat.arg, T.Dot) and mat.arg.label == "1"


def test_fuse_equation_guard_and_product_view():
    # tr(fuse(e1,e2)) = if eq(v1.1, v2.1) then {(v1.1, fn x => [...])}
    #                   else {}
    out = unlet(tr("fuse(a, b)"))
    assert isinstance(out, T.If)
    cond = out.cond
    # eq applied to the two raw projections
    assert isinstance(cond, T.App)
    assert isinstance(cond.fn, T.App)
    assert isinstance(cond.fn.fn, T.Var) and cond.fn.fn.name == "eq"
    assert isinstance(cond.fn.arg, T.Dot) and cond.fn.arg.label == "1"
    assert isinstance(cond.arg, T.Dot) and cond.arg.label == "1"
    # then-branch: singleton set of a pair whose view builds [1=..,2=..]
    then = out.then
    assert isinstance(then, T.SetExpr) and len(then.elems) == 1
    pair = then.elems[0]
    assert isinstance(pair, T.RecordExpr)
    product_view = pair.fields[1].expr
    assert isinstance(product_view, T.Lam)
    prod = product_view.body
    assert isinstance(prod, T.RecordExpr)
    assert [f.label for f in prod.fields] == ["1", "2"]
    # else-branch: the empty set
    assert isinstance(out.else_, T.SetExpr) and not out.else_.elems


def test_fuse_nary_guard_chains():
    out = unlet(tr("fuse(a, b, c)"))
    assert isinstance(out, T.If)
    # the n-ary guard is a conjunction (nested If) of raw comparisons
    assert isinstance(out.cond, T.If)
    prod = out.then.elems[0].fields[1].expr.body
    assert [f.label for f in prod.fields] == ["1", "2", "3"]


def test_relobj_equation():
    # tr(relobj(l=a, r=b)) =
    #   ([l = va.1, r = vb.1], fn x => [l = va.2 (x.l), r = vb.2 (x.r)])
    out = unlet(tr("relobj(l = a, r = b)"))
    assert isinstance(out, T.RecordExpr)
    raw = out.fields[0].expr
    assert isinstance(raw, T.RecordExpr)
    assert [f.label for f in raw.fields] == ["l", "r"]
    for f in raw.fields:
        assert isinstance(f.expr, T.Dot) and f.expr.label == "1"
    view = out.fields[1].expr
    assert isinstance(view, T.Lam)
    body = view.body
    assert [f.label for f in body.fields] == ["l", "r"]
    for f in body.fields:
        # (v.2 (x.label))
        assert isinstance(f.expr, T.App)
        assert isinstance(f.expr.fn, T.Dot) and f.expr.fn.label == "2"
        assert isinstance(f.expr.arg, T.Dot) and f.expr.arg.label == f.label


def test_translation_is_homomorphic_elsewhere():
    # nodes with no object constructs translate to themselves structurally
    src = "let x = [A := 1] in if true then x.A else 0 end"
    original = parse_expression(src)
    translated = translate_objects(original)
    from repro.syntax.pretty import pretty_term
    assert pretty_term(original) == pretty_term(translated)


def test_arguments_are_let_bound_exactly_once():
    # each tr(e_i) is bound once (the hygiene repair documented in
    # DESIGN.md): count the Lets introduced for a binary fuse
    out = tr("fuse(a, b)")
    lets = 0
    t = out
    while isinstance(t, T.Let):
        lets += 1
        t = t.body
    assert lets == 2

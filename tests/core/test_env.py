"""Consistency of the builtin environments.

The typing environment (core.env) and the runtime environment
(eval.builtins) must agree name-for-name, and each builtin's declared
arity must match the curried function type it was given.
"""

from repro.core.env import BUILTIN_NAMES, initial_type_env
from repro.core.types import TFun, resolve
from repro.eval.builtins import builtin_values


def test_every_typed_builtin_has_a_value():
    values = builtin_values()
    for name in BUILTIN_NAMES:
        assert name in values, f"builtin '{name}' has a type but no value"


def test_every_valued_builtin_has_a_type():
    env = initial_type_env()
    for name in builtin_values():
        assert env.lookup(name) is not None, \
            f"builtin '{name}' has a value but no type"


def test_arities_match_types():
    env = initial_type_env()
    for name, value in builtin_values().items():
        t = env.lookup(name).instantiate(1)
        depth = 0
        t = resolve(t)
        while isinstance(t, TFun):
            depth += 1
            t = resolve(t.cod)
        assert depth >= value.arity, \
            f"builtin '{name}': type allows {depth} args, arity {value.arity}"


def test_type_env_is_fresh_per_call():
    # instantiating a scheme from one env must not contaminate another
    env1, env2 = initial_type_env(), initial_type_env()
    from repro.core.types import INT, TSet
    from repro.core.unify import unify
    t1 = env1.lookup("union").instantiate(1)
    unify(resolve(t1).dom, TSet(INT))
    t2 = env2.lookup("union").instantiate(1)
    from repro.core.types import TVar
    assert isinstance(resolve(resolve(t2).dom.elem), TVar)


def test_builtin_names_tuple_is_stable():
    assert set(BUILTIN_NAMES) == set(builtin_values())

"""Lexer tests: token kinds, positions, comments, errors."""

import pytest

from repro.errors import LexError
from repro.syntax.lexer import tokenize


def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src)[:-1]]  # drop eof


def test_integers():
    assert kinds("42") == [("int", "42")]


def test_multi_digit_and_zero():
    assert kinds("0 007") == [("int", "0"), ("int", "007")]


def test_string_literal():
    assert kinds('"hello"') == [("string", "hello")]


def test_string_escapes():
    assert kinds(r'"a\"b\\c\nd"') == [("string", 'a"b\\c\nd')]


def test_bad_escape_rejected():
    with pytest.raises(LexError):
        tokenize(r'"\q"')


def test_unterminated_string():
    with pytest.raises(LexError) as exc:
        tokenize('"abc')
    assert "unterminated" in str(exc.value)


def test_identifiers_and_keywords():
    assert kinds("foo let bar fn") == [
        ("ident", "foo"), ("keyword", "let"), ("ident", "bar"),
        ("keyword", "fn")]


def test_identifier_with_prime_and_underscore():
    assert kinds("x' my_var") == [("ident", "x'"), ("ident", "my_var")]


def test_c_query_is_one_token():
    assert kinds("c-query") == [("keyword", "c-query")]


def test_c_alone_is_ident():
    assert kinds("c - query") == [
        ("ident", "c"), ("punct", "-"), ("keyword", "query")]


def test_assign_vs_eq():
    assert kinds(":= =") == [("punct", ":="), ("punct", "=")]


def test_arrow_tokens():
    assert kinds("=> ->") == [("punct", "=>"), ("punct", "->")]


def test_comparison_tokens_maximal_munch():
    assert kinds("<= >= < >") == [
        ("punct", "<="), ("punct", ">="), ("punct", "<"), ("punct", ">")]


def test_comment_is_skipped():
    assert kinds("1 (* comment *) 2") == [("int", "1"), ("int", "2")]


def test_nested_comments():
    assert kinds("1 (* a (* b *) c *) 2") == [("int", "1"), ("int", "2")]


def test_unterminated_comment():
    with pytest.raises(LexError):
        tokenize("(* oops")


def test_positions_are_tracked():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].column) == (1, 1)
    assert (toks[1].line, toks[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a ? b")


def test_eof_token_present():
    toks = tokenize("x")
    assert toks[-1].kind == "eof"


def test_punctuation_run():
    assert kinds("[{(,)}].;") == [
        ("punct", "["), ("punct", "{"), ("punct", "("), ("punct", ","),
        ("punct", ")"), ("punct", "}"), ("punct", "]"), ("punct", "."),
        ("punct", ";")]


def test_keyword_prefix_identifier():
    # 'classy' must not lex as the keyword 'class'.
    assert kinds("classy includesx") == [
        ("ident", "classy"), ("ident", "includesx")]

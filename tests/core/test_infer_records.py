"""Figure 1 typing rules for records: (rec), (dot), (ext), (upd), kinds.

These tests pin the *principal* types the paper displays, including the
kinded quantifiers (e.g. ``forall t::[[Income = int, Bonus = int]]. t ->
int`` for Annual_Income).
"""

import pytest

from repro.errors import KindError, TypeInferenceError
from tests.conftest import typeof


def test_record_literal_type():
    assert typeof('[Name = "Doe", Salary := 3000]') == \
        "[Name = string, Salary := int]"


def test_field_extraction_type():
    assert typeof("[A = 1, B = true].A") == "int"


def test_dot_is_polymorphic_kinded():
    assert typeof("fn x => x.Name") == \
        "forall t1::U. forall t2::[[Name = t1]]. t2 -> t1"


def test_two_field_accesses_merge_kind():
    assert typeof("fn x => (x.A) + x.B") == \
        "forall t1::[[A = int, B = int]]. t1 -> int"


def test_update_requires_mutable_kind():
    assert typeof("fn x => update(x, A, 1)") == \
        "forall t1::[[A := int]]. t1 -> unit"


def test_update_on_immutable_field_rejected():
    with pytest.raises(KindError):
        typeof("update([A = 1], A, 2)")


def test_update_on_mutable_field_ok():
    assert typeof("update([A := 1], A, 2)") == "unit"


def test_update_wrong_type_rejected():
    with pytest.raises(Exception):
        typeof('update([A := 1], A, "s")')


def test_dot_on_missing_field_rejected():
    with pytest.raises(KindError):
        typeof("[A = 1].B")


def test_dot_on_non_record_rejected():
    with pytest.raises(KindError):
        typeof("1.A")


def test_read_and_update_join_to_mutable_requirement():
    # reading and updating the same field joins to a mutable requirement,
    # polymorphic in the field's type
    assert typeof("fn x => let r = update(x, A, x.A) in x.A end") == \
        "forall t1::U. forall t2::[[A := t1]]. t2 -> t1"


def test_extract_transfers_type_and_mutability():
    assert typeof("let r = [S := 10] in [I := extract(r, S)] end") == \
        "[I := int]"


def test_extract_into_immutable_field():
    # john's Salary: immutable field sharing a mutable L-value.
    assert typeof("let r = [S := 10] in [I = extract(r, S)] end") == \
        "[I = int]"


def test_extract_of_immutable_field_rejected():
    with pytest.raises(KindError):
        typeof("let r = [S = 10] in [I := extract(r, S)] end")


def test_extract_outside_field_position_rejected():
    with pytest.raises(TypeInferenceError):
        typeof("let r = [S := 10] in extract(r, S) end")


def test_extract_under_arithmetic_rejected():
    # the paper's first illegal example
    with pytest.raises(TypeInferenceError):
        typeof("let r = [S := 10] in [I = extract(r, S) * 2] end")


def test_polymorphic_update_through_view_type():
    # adjustBonus from Section 3.3
    assert typeof("fn p => query(fn x => update(x, Bonus, x.Income * 3), p)") \
        == "forall t1::[[Income = int, Bonus := int]]. obj(t1) -> unit"


def test_duplicate_label_rejected():
    with pytest.raises(TypeInferenceError):
        typeof("[A = 1, A = 2]")


def test_record_is_expansive_no_generalization():
    # a record expression does not let-generalize (value restriction):
    # using it at two different field types must fail.
    with pytest.raises(Exception):
        typeof("let r = [A = fn x => x] in "
               "let u = (r.A) 1 in (r.A) true end end")


def test_lambda_generalizes():
    # but a lambda with the same body generalizes fine
    assert typeof("let f = fn x => x in "
                  "let u = f 1 in f true end end") == "bool"


def test_field_order_is_irrelevant_for_unification():
    assert typeof(
        "let g = fn b => if b then [A = 1, B = true] "
        "else [B = true, A = 1] in g end") \
        == "bool -> [A = int, B = bool]"


def test_nested_record_kinds():
    assert typeof("fn x => x.a.b") == (
        "forall t1::U. forall t2::[[b = t1]]. forall t3::[[a = t2]]. "
        "t3 -> t1")


def test_pair_projections():
    assert typeof("fn p => (p.1, p.2)") == (
        "forall t1::U. forall t2::U. forall t3::[[1 = t1, 2 = t2]]. "
        "t3 -> [1 = t1, 2 = t2]")


def test_numeric_label_record():
    assert typeof("(1, true).2") == "bool"

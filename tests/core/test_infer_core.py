"""Type inference for the core lambda/set fragment (Section 2)."""

import pytest

from repro.errors import TypeInferenceError, UnificationError
from tests.conftest import typeof


def test_constants():
    assert typeof("42") == "int"
    assert typeof('"s"') == "string"
    assert typeof("true") == "bool"
    assert typeof("()") == "unit"


def test_identity_is_polymorphic():
    assert typeof("fn x => x") == "forall t1::U. t1 -> t1"


def test_application():
    assert typeof("(fn x => x) 5") == "int"


def test_application_type_mismatch():
    with pytest.raises(UnificationError):
        typeof("(fn x => x + 1) true")


def test_unbound_variable():
    with pytest.raises(TypeInferenceError):
        typeof("nope")


def test_let_polymorphism():
    assert typeof("let id = fn x => x in (id 1, id true) end") == \
        "[1 = int, 2 = bool]"


def test_monomorphic_lambda_parameter():
    # lambda-bound variables are monomorphic (no first-class polymorphism)
    with pytest.raises(UnificationError):
        typeof("fn f => (f 1, f true)")


def test_if_branches_unify():
    assert typeof("if true then 1 else 2") == "int"
    with pytest.raises(UnificationError):
        typeof("if true then 1 else false")


def test_if_condition_must_be_bool():
    with pytest.raises(UnificationError):
        typeof("if 1 then 2 else 3")


def test_fix_factorial_type():
    assert typeof(
        "fix f. fn n => if n < 1 then 1 else n * (f (n - 1))") == \
        "int -> int"


def test_fun_sugar_polymorphic():
    assert typeof("let fun twice f = fn x => f (f x) in twice end") == \
        "forall t1::U. (t1 -> t1) -> t1 -> t1"


def test_mutual_fun_types():
    assert typeof(
        "let fun even n = if n < 1 then true else odd (n - 1) "
        "and odd n = if n < 1 then false else even (n - 1) "
        "in even 10 end") == "bool"


def test_empty_set_polymorphic():
    assert typeof("{}") == "forall t1::U. {t1}"


def test_set_elements_unify():
    assert typeof("{1, 2, 3}") == "{int}"
    with pytest.raises(UnificationError):
        typeof("{1, true}")


def test_union_type():
    assert typeof("union({1}, {2})") == "{int}"
    with pytest.raises(UnificationError):
        typeof('union({1}, {"a"})')


def test_hom_type():
    assert typeof("hom({1,2}, fn x => x * 2, fn a => fn b => a + b, 0)") \
        == "int"


def test_hom_as_value():
    assert typeof("hom") == (
        "forall t1::U. forall t2::U. forall t3::U. "
        "{t1} -> (t1 -> t2) -> (t2 -> t3 -> t3) -> t3 -> t3")
    # and hom(S, f, op, z) = op(f e1, op(... op(f en, z)))


def test_member_and_remove_types():
    assert typeof("member(1, {1,2})") == "bool"
    assert typeof("remove({1,2}, {2})") == "{int}"


def test_eq_is_polymorphic():
    assert typeof("eq") == "forall t1::U. t1 -> t1 -> bool"
    assert typeof('eq("a", "b")') == "bool"
    with pytest.raises(UnificationError):
        typeof('eq(1, "a")')


def test_infix_operators():
    assert typeof("1 + 2 * 3 - 4") == "int"
    assert typeof("1 < 2") == "bool"
    assert typeof('"a" ^ "b"') == "string"
    assert typeof("7 div 2 + 7 mod 2") == "int"


def test_andalso_orelse():
    assert typeof("true andalso 1 < 2 orelse false") == "bool"


def test_prod_type():
    assert typeof("prod({1}, {true})") == "{[1 = int, 2 = bool]}"


def test_prod_rejects_non_set():
    with pytest.raises(UnificationError):
        typeof("prod({1}, 2)")


def test_this_year():
    assert typeof("This_year()") == "int"


def test_occurs_check_self_application():
    with pytest.raises(TypeInferenceError):
        typeof("fn x => x x")


def test_size():
    assert typeof("size({1,2})") == "int"


def test_value_restriction_on_application():
    # an application result is not generalized
    with pytest.raises(Exception):
        typeof("let f = (fn x => fn y => y) 1 in (f 2, f true) end")


def test_value_restriction_set_of_values_generalizes():
    assert typeof("let s = {} in (union(s, {1}), union(s, {true})) end") \
        == "[1 = {int}, 2 = {bool}]"

"""Kinded unification: variable binding, kind merging, occurs, levels."""

import pytest

from repro.core.types import (BOOL, FieldReq, FieldType, INT, KRecord,
                              STRING, TFun, TRecord, TSet, TVar, resolve)
from repro.core.unify import ensure_record_field, occurs_adjust, unify
from repro.errors import KindError, OccursCheckError, UnificationError


def test_unify_base_types():
    unify(INT, INT)
    with pytest.raises(UnificationError):
        unify(INT, BOOL)


def test_unify_var_binds():
    v = TVar(1)
    unify(v, INT)
    assert resolve(v) is INT


def test_unify_var_var_links():
    a, b = TVar(1), TVar(1)
    unify(a, b)
    unify(b, STRING)
    assert resolve(a) is STRING


def test_unify_functions_componentwise():
    a, b = TVar(1), TVar(1)
    unify(TFun(a, BOOL), TFun(INT, b))
    assert resolve(a) is INT and resolve(b) is BOOL


def test_unify_sets():
    a = TVar(1)
    unify(TSet(a), TSet(INT))
    assert resolve(a) is INT


def test_unify_records_same_fields():
    a = TVar(1)
    r1 = TRecord({"x": FieldType(a, False)})
    r2 = TRecord({"x": FieldType(INT, False)})
    unify(r1, r2)
    assert resolve(a) is INT


def test_unify_records_field_mismatch():
    r1 = TRecord({"x": FieldType(INT, False)})
    r2 = TRecord({"y": FieldType(INT, False)})
    with pytest.raises(UnificationError):
        unify(r1, r2)


def test_unify_records_mutability_mismatch():
    r1 = TRecord({"x": FieldType(INT, False)})
    r2 = TRecord({"x": FieldType(INT, True)})
    with pytest.raises(UnificationError):
        unify(r1, r2)


def test_occurs_check_direct():
    v = TVar(1)
    with pytest.raises(OccursCheckError):
        unify(v, TFun(v, INT))


def test_occurs_check_through_set():
    v = TVar(1)
    with pytest.raises(OccursCheckError):
        unify(v, TSet(TSet(v)))


def test_occurs_adjust_lowers_levels():
    v = TVar(7)
    occurs_adjust(None, TFun(v, INT), 2)
    assert v.level == 2


def test_occurs_adjust_descends_into_kinds():
    inner = TVar(9)
    v = TVar(9, KRecord({"f": FieldReq(inner, False)}))
    occurs_adjust(None, v, 3)
    assert v.level == 3 and inner.level == 3


def test_var_var_kind_merge_union():
    a = TVar(1, KRecord({"x": FieldReq(INT, False)}))
    b = TVar(1, KRecord({"y": FieldReq(BOOL, False)}))
    unify(a, b)
    merged = resolve(a)
    assert isinstance(merged, TVar)
    assert set(merged.kind.fields) == {"x", "y"}


def test_var_var_kind_merge_common_field_unifies_types():
    t = TVar(1)
    a = TVar(1, KRecord({"x": FieldReq(t, False)}))
    b = TVar(1, KRecord({"x": FieldReq(INT, False)}))
    unify(a, b)
    assert resolve(t) is INT


def test_var_var_kind_merge_mutability_joins():
    a = TVar(1, KRecord({"x": FieldReq(INT, False)}))
    b = TVar(1, KRecord({"x": FieldReq(INT, True)}))
    unify(a, b)
    assert resolve(a).kind.fields["x"].mutable is True


def test_kinded_var_binds_to_satisfying_record():
    v = TVar(1, KRecord({"x": FieldReq(INT, False)}))
    r = TRecord({"x": FieldType(INT, True), "y": FieldType(BOOL, False)})
    unify(v, r)
    assert resolve(v) is r


def test_kinded_var_rejects_missing_field():
    v = TVar(1, KRecord({"z": FieldReq(INT, False)}))
    with pytest.raises(KindError):
        unify(v, TRecord({"x": FieldType(INT, False)}))


def test_kinded_var_rejects_immutable_for_mutable_req():
    v = TVar(1, KRecord({"x": FieldReq(INT, True)}))
    with pytest.raises(KindError):
        unify(v, TRecord({"x": FieldType(INT, False)}))


def test_kinded_var_rejects_non_record():
    v = TVar(1, KRecord({"x": FieldReq(INT, False)}))
    with pytest.raises(KindError):
        unify(v, INT)


def test_kinded_var_field_type_unified_on_bind():
    t = TVar(1)
    v = TVar(1, KRecord({"x": FieldReq(t, False)}))
    unify(v, TRecord({"x": FieldType(STRING, False)}))
    assert resolve(t) is STRING


def test_ensure_record_field_on_record():
    t = TVar(1)
    r = TRecord({"x": FieldType(INT, False)})
    ensure_record_field(r, "x", t, mutable_required=False)
    assert resolve(t) is INT


def test_ensure_record_field_missing():
    r = TRecord({"x": FieldType(INT, False)})
    with pytest.raises(KindError):
        ensure_record_field(r, "nope", TVar(1), mutable_required=False)


def test_ensure_record_field_mutability_enforced():
    r = TRecord({"x": FieldType(INT, False)})
    with pytest.raises(KindError):
        ensure_record_field(r, "x", INT, mutable_required=True)


def test_ensure_record_field_grows_var_kind():
    v = TVar(1)
    ensure_record_field(v, "a", INT, mutable_required=False)
    ensure_record_field(v, "b", BOOL, mutable_required=True)
    assert set(v.kind.fields) == {"a", "b"}
    assert v.kind.fields["b"].mutable


def test_ensure_record_field_upgrades_mutability():
    v = TVar(1)
    ensure_record_field(v, "a", INT, mutable_required=False)
    ensure_record_field(v, "a", INT, mutable_required=True)
    assert v.kind.fields["a"].mutable


def test_ensure_record_field_on_non_record_type():
    with pytest.raises(KindError):
        ensure_record_field(INT, "a", INT, mutable_required=False)


def test_var_level_min_on_var_var():
    a, b = TVar(2), TVar(5)
    unify(a, b)
    assert b.level == 2


def test_cyclic_kind_rejected():
    # t1 :: [[A = t2]]; unifying t1 with t2 would make t2's kind mention t2.
    t2 = TVar(1)
    t1 = TVar(1, KRecord({"A": FieldReq(t2, False)}))
    with pytest.raises(OccursCheckError):
        unify(t1, t2)

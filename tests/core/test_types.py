"""Tests for the type representation: schemes, copying, helpers."""

from repro.core.types import (BOOL, FieldReq, FieldType, INT, KRecord,
                              STRING, TFun, TRecord, TSet, TVar, TypeScheme,
                              UNIT, contains_lval, TLval, free_type_vars,
                              fun_type, pair_type, product_type, resolve,
                              types_structurally_equal, walk_map, TObj)


def test_resolve_follows_links():
    a, b = TVar(1), TVar(1)
    a.link = b
    b.link = INT
    assert resolve(a) is INT


def test_resolve_path_compression():
    a, b, c = TVar(1), TVar(1), TVar(1)
    a.link, b.link = b, c
    resolve(a)
    assert a.link is c


def test_fun_type_right_associates():
    t = fun_type(INT, BOOL, STRING)
    assert isinstance(t, TFun)
    assert isinstance(t.cod, TFun)
    assert t.cod.cod is STRING


def test_pair_type_is_numeric_record():
    t = pair_type(INT, BOOL)
    assert set(t.fields) == {"1", "2"}
    assert not t.fields["1"].mutable


def test_product_type_ordering():
    t = product_type([INT, BOOL, STRING])
    assert list(t.fields) == ["1", "2", "3"]


def test_free_type_vars_dedup_and_order():
    a, b = TVar(1), TVar(1)
    t = TFun(a, TFun(b, a))
    assert free_type_vars(t) == [a, b]


def test_free_type_vars_through_kinds():
    a, b = TVar(1), TVar(1)
    a.kind = KRecord({"x": FieldReq(b, False)})
    assert set(free_type_vars(a)) == {a, b}


def test_free_type_vars_skips_resolved():
    a = TVar(1)
    a.link = INT
    assert free_type_vars(TSet(a)) == []


def test_contains_lval():
    assert contains_lval(TLval(INT))
    assert contains_lval(TRecord({"a": FieldType(TLval(INT), False)}))
    assert not contains_lval(fun_type(INT, BOOL))


def test_structural_equality_records():
    t1 = TRecord({"a": FieldType(INT, True), "b": FieldType(BOOL, False)})
    t2 = TRecord({"b": FieldType(BOOL, False), "a": FieldType(INT, True)})
    assert types_structurally_equal(t1, t2)


def test_structural_inequality_on_mutability():
    t1 = TRecord({"a": FieldType(INT, True)})
    t2 = TRecord({"a": FieldType(INT, False)})
    assert not types_structurally_equal(t1, t2)


def test_scheme_instantiate_fresh_vars():
    v = TVar(0)
    scheme = TypeScheme([v], TFun(v, v))
    t1 = scheme.instantiate(1)
    t2 = scheme.instantiate(1)
    assert isinstance(t1, TFun) and resolve(t1.dom) is resolve(t1.cod)
    assert resolve(t1.dom) is not resolve(t2.dom)  # fresh per instantiation


def test_scheme_instantiate_copies_kinds():
    v = TVar(0)
    w = TVar(0)
    v.kind = KRecord({"f": FieldReq(w, True)})
    scheme = TypeScheme([v, w], TFun(v, w))
    inst = scheme.instantiate(1)
    dom = resolve(inst.dom)
    cod = resolve(inst.cod)
    assert isinstance(dom.kind, KRecord)
    # the kind's field type is the *fresh* copy of w
    assert resolve(dom.kind.fields["f"].type) is cod


def test_scheme_mono_passthrough():
    s = TypeScheme.mono(INT)
    assert s.is_mono()
    assert s.instantiate(1) is INT


def test_walk_map_replaces_nodes():
    t = TSet(TObj(INT))
    replaced = walk_map(
        t, lambda node: STRING if isinstance(node, TObj) else None)
    assert isinstance(replaced, TSet)
    assert resolve(replaced.elem) is STRING


def test_unit_and_bases_distinct():
    assert UNIT.name == "unit"
    assert not types_structurally_equal(UNIT, INT)

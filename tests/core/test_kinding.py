"""Figure 1 kinding rules: the F < F' relation and |- tau :: K."""

from repro.core.kinds import field_satisfies, has_kind, kind_fields_of
from repro.core.types import (BOOL, FieldReq, FieldType, INT, KRecord,
                              KUniv, STRING, TFun, TRecord, TSet, TVar, U)


def rec(**fields):
    return TRecord({l: FieldType(t, mutable=l.startswith("m_"))
                    for l, t in fields.items()})


def test_every_type_has_kind_u():
    for t in (INT, TSet(BOOL), rec(a=INT), TVar(1)):
        assert has_kind(t, U)


def test_immutable_requirement_met_by_immutable_field():
    req = FieldReq(INT, mutable=False)
    assert field_satisfies(req, FieldType(INT, mutable=False))


def test_immutable_requirement_met_by_mutable_field():
    # The paper's F < F': 'l = tau' is satisfied by 'l := tau'.
    req = FieldReq(INT, mutable=False)
    assert field_satisfies(req, FieldType(INT, mutable=True))


def test_mutable_requirement_not_met_by_immutable_field():
    req = FieldReq(INT, mutable=True)
    assert not field_satisfies(req, FieldType(INT, mutable=False))


def test_field_types_must_match():
    req = FieldReq(INT, mutable=False)
    assert not field_satisfies(req, FieldType(BOOL, mutable=False))


def test_record_has_kind_with_extra_fields():
    t = rec(a=INT, b=BOOL, c=STRING)
    k = KRecord({"a": FieldReq(INT, False)})
    assert has_kind(t, k)


def test_record_lacking_field_fails():
    t = rec(a=INT)
    k = KRecord({"b": FieldReq(INT, False)})
    assert not has_kind(t, k)


def test_record_mutable_requirement():
    t = TRecord({"a": FieldType(INT, mutable=True)})
    assert has_kind(t, KRecord({"a": FieldReq(INT, True)}))
    t2 = TRecord({"a": FieldType(INT, mutable=False)})
    assert not has_kind(t2, KRecord({"a": FieldReq(INT, True)}))


def test_empty_record_kind_accepts_any_record():
    assert has_kind(rec(a=INT), KRecord({}))
    assert not has_kind(INT, KRecord({}))
    assert not has_kind(TFun(INT, INT), KRecord({}))


def test_var_kind_subsumption():
    v = TVar(1, KRecord({"a": FieldReq(INT, True),
                         "b": FieldReq(BOOL, False)}))
    # the variable's own mutable requirement satisfies an immutable ask
    assert has_kind(v, KRecord({"a": FieldReq(INT, False)}))
    assert has_kind(v, KRecord({"a": FieldReq(INT, True)}))
    # but an immutable entry cannot answer a mutable ask
    assert not has_kind(v, KRecord({"b": FieldReq(BOOL, True)}))


def test_var_without_record_kind_fails_record_ask():
    v = TVar(1)
    assert not has_kind(v, KRecord({"a": FieldReq(INT, False)}))


def test_var_kind_missing_field_fails():
    v = TVar(1, KRecord({"a": FieldReq(INT, False)}))
    assert not has_kind(v, KRecord({"z": FieldReq(INT, False)}))


def test_kind_fields_of_record():
    fields = kind_fields_of(rec(a=INT, m_b=BOOL))
    assert fields["a"].mutable is False
    assert fields["m_b"].mutable is True


def test_kind_fields_of_kinded_var():
    v = TVar(1, KRecord({"x": FieldReq(STRING, False)}))
    assert set(kind_fields_of(v)) == {"x"}


def test_kind_fields_of_other_types_is_none():
    assert kind_fields_of(INT) is None
    assert kind_fields_of(TVar(1)) is None


def test_kuniv_is_shared_singleton_by_convention():
    assert isinstance(U, KUniv)

"""Parser tests: AST shapes, precedence, sugar, error reporting."""

import pytest

from repro.core import terms as T
from repro.errors import ParseError
from repro.syntax.parser import (ExprDecl, FunDecl, RecClassDecl, ValDecl,
                                 parse_expression, parse_program)

p = parse_expression


def test_integer_literal():
    e = p("42")
    assert isinstance(e, T.Const) and e.value == 42


def test_negative_integer_literal():
    e = p("-7")
    assert isinstance(e, T.Const) and e.value == -7


def test_string_literal():
    e = p('"hi"')
    assert isinstance(e, T.Const) and e.value == "hi"


def test_bool_literals():
    assert p("true").value is True
    assert p("false").value is False


def test_unit():
    assert isinstance(p("()"), T.Unit)


def test_lambda():
    e = p("fn x => x")
    assert isinstance(e, T.Lam) and e.param == "x"
    assert isinstance(e.body, T.Var)


def test_application_left_assoc():
    e = p("f a b")
    assert isinstance(e, T.App)
    assert isinstance(e.fn, T.App)
    assert e.fn.fn.name == "f"


def test_arithmetic_precedence():
    # 1 + 2 * 3 parses as 1 + (2 * 3)
    e = p("1 + 2 * 3")
    assert isinstance(e, T.App)
    assert e.fn.fn.name == "+"
    inner = e.arg
    assert inner.fn.fn.name == "*"


def test_comparison_lower_than_arith():
    e = p("1 + 2 < 4")
    assert e.fn.fn.name == "<"


def test_infix_equals_is_eq():
    e = p('x = "a"')
    assert e.fn.fn.name == "eq"


def test_record_fields_mutability():
    e = p("[A = 1, B := 2]")
    assert isinstance(e, T.RecordExpr)
    assert [(f.label, f.mutable) for f in e.fields] == [
        ("A", False), ("B", True)]


def test_empty_record_rejected():
    with pytest.raises(ParseError):
        p("[]")


def test_tuple_is_numeric_record():
    e = p("(1, 2, 3)")
    assert isinstance(e, T.RecordExpr)
    assert [f.label for f in e.fields] == ["1", "2", "3"]


def test_projection_numeric_label():
    e = p("x.1")
    assert isinstance(e, T.Dot) and e.label == "1"


def test_chained_projection():
    e = p("x.a.b")
    assert e.label == "b" and e.expr.label == "a"


def test_set_literal():
    e = p("{1, 2}")
    assert isinstance(e, T.SetExpr) and len(e.elems) == 2
    assert isinstance(p("{}"), T.SetExpr)


def test_let():
    e = p("let x = 1 in x end")
    assert isinstance(e, T.Let) and e.name == "x"


def test_let_requires_end():
    with pytest.raises(ParseError):
        p("let x = 1 in x")


def test_top_level_semicolon_separates_decls():
    decls = parse_program("f x; g y")
    assert len(decls) == 2 and all(isinstance(d, ExprDecl) for d in decls)


def test_if_then_else():
    e = p("if true then 1 else 2")
    assert isinstance(e, T.If)


def test_andalso_orelse_desugar():
    e = p("a andalso b")
    assert isinstance(e, T.If) and isinstance(e.else_, T.Const)
    e2 = p("a orelse b")
    assert isinstance(e2, T.If) and e2.then.value is True


def test_fix():
    e = p("fix f. fn x => f x")
    assert isinstance(e, T.Fix) and e.name == "f"


def test_fun_sugar_single_is_fix_lambda():
    e = p("let fun f x = x in f end")
    assert isinstance(e, T.Let)
    assert isinstance(e.bound, T.Fix)


def test_fun_sugar_multi_params_curry():
    e = p("let fun f x y = x in f end")
    fix = e.bound
    assert isinstance(fix.body, T.Lam) and isinstance(fix.body.body, T.Lam)


def test_mutual_fun_sugar_builds_record_fix():
    e = p("let fun f x = g x and g y = f y in f end")
    assert isinstance(e, T.Let)  # outer let of the fixed record


def test_idview_query_fuse_relobj():
    assert isinstance(p("IDView([A = 1])"), T.IDView)
    assert isinstance(p("query(f, o)"), T.Query)
    fuse = p("fuse(a, b, c)")
    assert isinstance(fuse, T.Fuse) and len(fuse.objs) == 3
    rel = p("relobj(l = a, r = b)")
    assert isinstance(rel, T.RelObj)
    assert [l for l, _ in rel.fields] == ["l", "r"]


def test_fuse_arity_error():
    with pytest.raises(ParseError):
        p("fuse(a)")


def test_as_view():
    e = p("x as f")
    assert isinstance(e, T.AsView)


def test_as_is_left_associative():
    e = p("x as f as g")
    assert isinstance(e, T.AsView) and isinstance(e.obj, T.AsView)


def test_extract_and_update():
    e = p("[A = extract(r, l)]")
    assert isinstance(e.fields[0].expr, T.Extract)
    u = p("update(r, l, 5)")
    assert isinstance(u, T.Update) and u.label == "l"


def test_class_expression():
    e = p("class {} includes C as f where p end")
    assert isinstance(e, T.ClassExpr)
    assert len(e.includes) == 1
    assert len(e.includes[0].sources) == 1


def test_class_multi_source_include():
    e = p("class {} include C1, C2 as f where p end")
    assert len(e.includes[0].sources) == 2


def test_class_no_includes():
    e = p("class {a, b} end")
    assert isinstance(e, T.ClassExpr) and e.includes == []


def test_cquery_insert_delete():
    assert isinstance(p("c-query(f, C)"), T.CQuery)
    assert isinstance(p("insert(o, C)"), T.Insert)
    assert isinstance(p("delete(o, C)"), T.Delete)


def test_let_classes_recursive():
    e = p("let A = class {} includes B as f where p end "
          "and B = class {} includes A as g where q end in A end")
    assert isinstance(e, T.LetClasses)
    assert [n for n, _ in e.bindings] == ["A", "B"]


def test_single_class_let_is_letclasses():
    e = p("let C = class {} end in C end")
    assert isinstance(e, T.LetClasses)


def test_and_bindings_require_classes():
    with pytest.raises(ParseError):
        p("let x = 1 and y = 2 in x end")


def test_builtin_call_style_is_curried():
    e = p("union({1}, {2})")
    assert isinstance(e, T.App) and isinstance(e.fn, T.App)
    assert e.fn.fn.name == "union"


def test_builtin_bare_reference():
    e = p("hom(s, f, union, z)")
    # third argument is the bare function value
    arg = e.fn.arg
    assert isinstance(arg, T.Var) and arg.name == "union"


def test_this_year_unit_call():
    e = p("This_year()")
    assert isinstance(e, T.App) and isinstance(e.arg, T.Unit)


def test_select_desugars_to_hom():
    e = p("select as f from S where p")
    # hom(S, step, union, {}) — application spine rooted at hom
    spine = e
    while isinstance(spine, T.App):
        spine = spine.fn
    assert isinstance(spine, T.Var) and spine.name == "hom"


def test_relation_desugar_structure():
    e = p('relation [l = x] from x in S where true')
    spine = e
    while isinstance(spine, T.App):
        spine = spine.fn
    assert spine.name == "hom"


def test_intersect_single_is_identity():
    e = p("intersect(S)")
    assert isinstance(e, T.Var) and e.name == "S"


def test_objeq_desugar():
    e = p("objeq(a, b)")  # not(eq(fuse(a,b), {}))
    assert isinstance(e, T.App) and e.fn.name == "not"


def test_prod():
    e = p("prod(a, b, c)")
    assert isinstance(e, T.Prod) and len(e.sets) == 3


def test_trailing_input_rejected():
    with pytest.raises(ParseError):
        p("1 2 3 )")


def test_program_val_and_fun_and_expr():
    decls = parse_program('val x = 1 fun f y = y + 1 val z = 2; 99')
    assert isinstance(decls[0], ValDecl)
    assert isinstance(decls[1], FunDecl)
    assert isinstance(decls[2], ValDecl)
    assert isinstance(decls[3], ExprDecl)


def test_program_recursive_class_group():
    decls = parse_program(
        "val A = class {} includes B as f where p end "
        "and B = class {} end")
    assert isinstance(decls[0], RecClassDecl)
    assert [n for n, _ in decls[0].bindings] == ["A", "B"]


def test_program_val_and_non_class_rejected():
    with pytest.raises(ParseError):
        parse_program("val x = 1 and y = 2")


def test_error_position_reported():
    with pytest.raises(ParseError) as exc:
        p("let x = in x end")
    assert exc.value.line == 1
